#include "src/init/bootstrap.h"

#include "src/link/object_format.h"

namespace multics {
namespace {

SegmentAttributes LibraryAttrs(const Principal& author) {
  SegmentAttributes attrs;
  attrs.acl.Set(AclEntry{"*", "*", "*", kModeRead | kModeExecute});
  attrs.acl.Set(AclEntry{author.person, author.project, "*",
                         kModeRead | kModeWrite | kModeExecute});
  attrs.author = author;
  return attrs;
}

SegmentAttributes DirAttrs(const Principal& author) {
  SegmentAttributes attrs;
  attrs.acl.Set(AclEntry{"*", "*", "*", kDirStatus});
  attrs.acl.Set(AclEntry{author.person, author.project, "*",
                         kDirStatus | kDirModify | kDirAppend});
  attrs.author = author;
  return attrs;
}

// Writes a built object image into a fresh segment under `dir_segno`.
Status InstallObjectSegment(Kernel& kernel, Process& init, SegNo dir_segno,
                            const std::string& name, const std::vector<Word>& image) {
  SegmentAttributes attrs = LibraryAttrs(init.principal());
  MX_ASSIGN_OR_RETURN(Uid uid, kernel.FsCreateSegment(init, dir_segno, name, attrs));
  (void)uid;
  MX_ASSIGN_OR_RETURN(InitiateResult result, kernel.Initiate(init, dir_segno, name));
  const uint32_t pages = PageOf(static_cast<WordOffset>(image.size())) + 1;
  MX_RETURN_IF_ERROR(kernel.SegSetLength(init, result.segno, pages));
  for (WordOffset i = 0; i < image.size(); ++i) {
    if (image[i] != 0) {
      MX_RETURN_IF_ERROR(kernel.KernelWriteWord(init, result.segno, i, image[i]));
    }
  }
  return kernel.Terminate(init, result.segno);
}

}  // namespace

std::vector<UserSpec> DefaultUsers() {
  return {
      {"Jones", "Faculty", "j0nespw", {SensitivityLevel::kSecret, CategorySet::Of({1})}},
      {"Smith", "Faculty", "sm1thpw", {SensitivityLevel::kConfidential, {}}},
      {"Doe", "Students", "d0epw", {SensitivityLevel::kUnclassified, {}}},
      {"Mitre", "Audit", "m1trepw",
       {SensitivityLevel::kTopSecret, CategorySet::Of({1, 2})}},
  };
}

Result<InitReport> Bootstrap::Run(Kernel& kernel, const BootstrapOptions& options) {
  InitReport report;
  Machine& machine = kernel.machine();
  auto step = [&](const std::string& name, Cycles cost) {
    machine.Charge(cost, "ring0_init");
    ++report.privileged_steps;
    report.ring0_cycles += cost;
    report.step_names.push_back(name);
  };

  // The classic collection sequence: each of these was a separate privileged
  // program run in ring 0, brought in piecemeal from the boot tape.
  step("initialize_core_map", 800);
  step("initialize_ast", 600);
  step("initialize_page_control", 700);
  step("initialize_traffic_controller", 500);
  step("initialize_interrupt_masks", 300);
  step("initialize_root_directory", 400);

  Principal initializer{"Initializer", "SysDaemon", "z"};
  MX_ASSIGN_OR_RETURN(Process * init, kernel.BootstrapProcess("initializer", initializer,
                                                              MlsLabel::SystemHigh()));
  init->set_ring(kRingSupervisor);
  report.init_process = init;
  step("create_initializer_process", 400);

  MX_ASSIGN_OR_RETURN(SegNo root, kernel.RootDir(*init));

  // Directory skeleton.
  MX_ASSIGN_OR_RETURN(Uid udd_uid,
                      kernel.FsCreateDirectory(*init, root, "udd", DirAttrs(initializer)));
  (void)udd_uid;
  step("create_udd", 300);
  if (!kernel.hierarchy().Lookup(kernel.hierarchy().root(), "system").ok()) {
    MX_ASSIGN_OR_RETURN(Uid system_uid,
                        kernel.FsCreateDirectory(*init, root, "system", DirAttrs(initializer)));
    (void)system_uid;
  }
  step("create_system", 300);
  MX_ASSIGN_OR_RETURN(
      Uid lib_uid, kernel.FsCreateDirectory(*init, root, "system_library",
                                            DirAttrs(initializer)));
  (void)lib_uid;
  step("create_system_library", 300);

  // Per-project and per-user home directories, with quotas.
  MX_ASSIGN_OR_RETURN(InitiateResult udd, kernel.Initiate(*init, root, "udd"));
  for (const UserSpec& user : options.users) {
    if (!kernel.FsStatus(*init, udd.segno, user.project).ok()) {
      MX_ASSIGN_OR_RETURN(Uid project_uid,
                          kernel.FsCreateDirectory(*init, udd.segno, user.project,
                                                   DirAttrs(initializer),
                                                   options.project_quota_pages));
      (void)project_uid;
      step("create_project_" + user.project, 250);
    }
    MX_ASSIGN_OR_RETURN(InitiateResult project,
                        kernel.Initiate(*init, udd.segno, user.project));
    // Home directories are "upgraded" branches labeled at the user's maximum
    // clearance, so the user can both list and create entries there.
    SegmentAttributes home = DirAttrs(Principal{user.person, user.project, "a"});
    home.label = user.max_clearance;
    MX_ASSIGN_OR_RETURN(Uid home_uid, kernel.FsCreateDirectory(*init, project.segno,
                                                               user.person, home));
    (void)home_uid;
    (void)kernel.Terminate(*init, project.segno);
    kernel.RegisterUser(user.person, user.project, user.password, user.max_clearance);
    step("register_user_" + user.person, 200);
  }

  // The shared library: real object segments the linker experiments use.
  if (options.install_library) {
    MX_ASSIGN_OR_RETURN(InitiateResult lib, kernel.Initiate(*init, root, "system_library"));

    std::vector<Word> math_text(64);
    for (size_t i = 0; i < math_text.size(); ++i) {
      math_text[i] = 0x1000 + i;
    }
    std::vector<Word> math_image = ObjectBuilder()
                                       .SetText(std::move(math_text))
                                       .AddSymbol("sqrt", 10)
                                       .AddSymbol("sin", 20)
                                       .AddSymbol("cos", 30)
                                       .AddSymbol("exp", 40)
                                       .Build();
    MX_RETURN_IF_ERROR(InstallObjectSegment(kernel, *init, lib.segno, "math_", math_image));
    step("install_library_math_", 500);

    std::vector<Word> fmt_text(32);
    for (size_t i = 0; i < fmt_text.size(); ++i) {
      fmt_text[i] = 0x2000 + i;
    }
    std::vector<Word> fmt_image = ObjectBuilder()
                                      .SetText(std::move(fmt_text))
                                      .AddSymbol("format", 8)
                                      .AddSymbol("ioa_", 12)
                                      .AddLink("math_", "sqrt")
                                      .AddLink("math_", "exp")
                                      .Build();
    MX_RETURN_IF_ERROR(InstallObjectSegment(kernel, *init, lib.segno, "fmt_", fmt_image));
    step("install_library_fmt_", 500);
    (void)kernel.Terminate(*init, lib.segno);
  }

  step("attach_network", 400);
  step("initialize_io_channels", kernel.config().per_device_io ? 900 : 200);
  step("start_system_processes", 350);

  // Salvage pass: verify every directory entry points at a live branch.
  uint32_t entries_checked = 0;
  std::vector<Uid> stack{kernel.hierarchy().root()};
  while (!stack.empty()) {
    Uid dir = stack.back();
    stack.pop_back();
    auto entries = kernel.hierarchy().List(dir);
    if (!entries.ok()) {
      continue;
    }
    for (const DirEntry& entry : entries.value()) {
      ++entries_checked;
      if (entry.is_link) {
        continue;
      }
      auto branch = kernel.store().Get(entry.uid);
      if (!branch.ok()) {
        return Status::kSegmentDamaged;
      }
      if (branch.value()->is_directory) {
        stack.push_back(entry.uid);
      }
    }
  }
  step("salvage_file_system", 50 * entries_checked);
  step("announce_ready", 100);

  (void)kernel.Terminate(*init, udd.segno);
  return report;
}

}  // namespace multics
