#include "src/link/binder.h"

namespace multics {

Status Binder::AddComponent(const std::string& name, const std::vector<Word>& image) {
  if (name.empty() || name.size() > 32) {
    return Status::kInvalidArgument;
  }
  for (const Component& existing : components_) {
    if (existing.name == name) {
      return Status::kNameDuplication;
    }
  }

  WordReader reader = [&image](WordOffset offset) -> Result<Word> {
    if (offset >= image.size()) {
      return Status::kOutOfRange;
    }
    return image[offset];
  };
  Component component;
  component.name = name;
  MX_ASSIGN_OR_RETURN(component.header,
                      ObjectReader::ReadHeader(reader, static_cast<uint32_t>(image.size()),
                                               /*validate=*/true));
  component.text.assign(
      image.begin() + component.header.text_offset,
      image.begin() + component.header.text_offset + component.header.text_length);
  MX_ASSIGN_OR_RETURN(component.defs, ObjectReader::ReadDefs(reader, component.header));
  for (uint32_t i = 0; i < component.header.links_count; ++i) {
    MX_ASSIGN_OR_RETURN(LinkRef link, ObjectReader::ReadLink(reader, component.header, i));
    component.links.push_back(std::move(link));
  }

  // Symbol names must stay unique across the bind, or resolution would be
  // ambiguous in the merged definitions section.
  for (const SymbolDef& def : component.defs) {
    for (const Component& existing : components_) {
      for (const SymbolDef& other : existing.defs) {
        if (other.name == def.name) {
          return Status::kNameDuplication;
        }
      }
    }
  }
  components_.push_back(std::move(component));
  return Status::kOk;
}

Result<BindResult> Binder::Bind() const {
  if (components_.empty()) {
    return Status::kFailedPrecondition;
  }

  // Pass 1: lay out the concatenated text and rebase every definition.
  std::vector<Word> text;
  std::vector<SymbolDef> defs;
  std::vector<std::pair<std::string, WordOffset>> component_bases;
  for (const Component& component : components_) {
    WordOffset base = static_cast<WordOffset>(text.size());
    component_bases.emplace_back(component.name, base);
    text.insert(text.end(), component.text.begin(), component.text.end());
    for (const SymbolDef& def : component.defs) {
      defs.push_back(SymbolDef{def.name, def.value + base});
    }
  }

  auto find_symbol = [&](const std::string& target_component,
                         const std::string& symbol) -> Result<WordOffset> {
    for (const Component& component : components_) {
      if (component.name != target_component) {
        continue;
      }
      WordOffset base = 0;
      for (const auto& [name, component_base] : component_bases) {
        if (name == component.name) {
          base = component_base;
        }
      }
      for (const SymbolDef& def : component.defs) {
        if (def.name == symbol) {
          return def.value + base;
        }
      }
      return Status::kSymbolNotFound;
    }
    return Status::kNotFound;
  };

  // Pass 2: internalize links between components; keep the rest external.
  BindResult result;
  ObjectBuilder builder;
  builder.SetText(std::move(text));
  for (const SymbolDef& def : defs) {
    builder.AddSymbol(def.name, def.value);
    ++result.symbols;
  }
  std::vector<std::pair<uint32_t, WordOffset>> internal;  // (link index, offset)
  uint32_t link_index = 0;
  for (const Component& component : components_) {
    for (const LinkRef& link : component.links) {
      auto internal_target = find_symbol(link.target_segment, link.target_symbol);
      if (internal_target.ok()) {
        // Bound-in: the link is pre-snapped to the bound segment itself.
        builder.AddLink(link.target_segment, link.target_symbol);
        internal.emplace_back(link_index, internal_target.value());
        ++result.internalized_links;
      } else if (internal_target.status() == Status::kSymbolNotFound) {
        // The component exists in the bind but lacks the symbol: a real
        // error the binder must surface, not defer to run time.
        return Status::kSymbolNotFound;
      } else {
        builder.AddLink(link.target_segment, link.target_symbol);
        ++result.external_links;
      }
      ++link_index;
    }
  }

  result.image = builder.Build();
  result.components = static_cast<uint32_t>(components_.size());

  // Mark the internalized links snapped in the serialized image.
  WordReader reader = [&result](WordOffset offset) -> Result<Word> {
    if (offset >= result.image.size()) {
      return Status::kOutOfRange;
    }
    return result.image[offset];
  };
  WordWriter writer = [&result](WordOffset offset, Word value) -> Status {
    if (offset >= result.image.size()) {
      return Status::kOutOfRange;
    }
    result.image[offset] = value;
    return Status::kOk;
  };
  MX_ASSIGN_OR_RETURN(ObjectHeader header,
                      ObjectReader::ReadHeader(reader,
                                               static_cast<uint32_t>(result.image.size()),
                                               true));
  for (const auto& [index, offset] : internal) {
    MX_RETURN_IF_ERROR(
        ObjectReader::WriteSnapped(writer, header, index, kBoundSelfSegNo, offset));
  }
  return result;
}

}  // namespace multics
