// Object verification against a source model — the paper's footnote (6):
//
//   "the compiler need compile correctly only the specific programs of the
//    kernel—not all possible programs. Thus, the compiler's effect on the
//    kernel can be certified by comparing the source code 'model' for each
//    kernel module with the compiler-produced object code 'implementation',
//    a task much simpler than certifying the compiler correct for all
//    possible source programs."
//
// An ObjectModel is what the build *intended* a module to be: its exported
// symbols, its outward references, its gate entry bound, and a digest of its
// text. VerifyObject checks an installed object segment against the model
// and reports every discrepancy — an extra symbol is a trapdoor, an extra
// link is an unplanned dependency, a text digest mismatch is a compiler (or
// tamperer) change.

#ifndef SRC_LINK_VERIFIER_H_
#define SRC_LINK_VERIFIER_H_

#include <string>
#include <vector>

#include "src/link/object_format.h"

namespace multics {

// FNV-1a over a word sequence.
uint64_t TextDigest(const std::vector<Word>& words);

struct ObjectModel {
  std::vector<SymbolDef> symbols;                             // Sorted by name.
  std::vector<std::pair<std::string, std::string>> links;    // (segment, symbol), in order.
  uint32_t entry_bound = 0;
  uint64_t text_digest = 0;
  uint32_t text_length = 0;

  // Derives the model from a trusted image (the build's own output, before
  // installation) — what the certifier records at build time.
  static Result<ObjectModel> FromTrustedImage(const std::vector<Word>& image);
};

struct VerifyReport {
  bool matches = true;
  std::vector<std::string> discrepancies;
};

// Reads the (possibly hostile) installed object through `read` and compares
// against the model. Never trusts the header beyond `segment_words`.
Result<VerifyReport> VerifyObject(const WordReader& read, uint32_t segment_words,
                                  const ObjectModel& model);

}  // namespace multics

#endif  // SRC_LINK_VERIFIER_H_
