// The dynamic linker, host-neutral: the same algorithm runs inside the
// kernel (legacy configuration) or in the user ring (kernelized, after
// Janson's removal project [12,13]). The LinkageEnvironment supplies what
// differs between the two homes: how segment names resolve to segment
// numbers (kernel search vs user-ring search rules) and how words are read
// and written (both ultimately through the paged segment machinery).
//
// The validate flag is the security story of E10: the legacy in-kernel
// linker trusted the user-constructed object segment's header; this linker,
// when validate=false, does the same, and the *caller* decides what a
// resulting wild reference means (a ring-0 fault in the kernel home, a
// confined error in the user-ring home).

#ifndef SRC_LINK_LINKER_H_
#define SRC_LINK_LINKER_H_

#include <string>

#include "src/link/object_format.h"

namespace multics {

class LinkageEnvironment {
 public:
  virtual ~LinkageEnvironment() = default;

  // Resolves a segment name to a segment number in the faulting process's
  // address space (initiating the segment if necessary).
  virtual Result<SegNo> FindSegment(const std::string& name) = 0;

  virtual Result<Word> ReadWord(SegNo segno, WordOffset offset) = 0;
  virtual Status WriteWord(SegNo segno, WordOffset offset, Word value) = 0;
  virtual Result<uint32_t> SegmentLengthWords(SegNo segno) = 0;
};

struct LinkSnapResult {
  uint32_t snapped = 0;
  uint32_t already_snapped = 0;
};

class Linker {
 public:
  Linker(LinkageEnvironment* env, bool validate_input)
      : env_(env), validate_(validate_input) {}

  // Snaps every unsnapped link in `object`'s linkage section.
  Result<LinkSnapResult> SnapAll(SegNo object);

  // Snaps one link; returns the (segno, offset) it now points to.
  Result<std::pair<SegNo, WordOffset>> SnapOne(SegNo object, uint32_t link_index);

  // Looks a symbol up in an object segment's definitions section.
  Result<WordOffset> LookupSymbol(SegNo object, const std::string& name);

  // Reads and validates (or trusts) the header.
  Result<ObjectHeader> Header(SegNo object);

  // Number of out-of-segment references the linker attempted because it
  // trusted a malformed header. In the kernel home each of these is a ring-0
  // fault ("crash"); in the user-ring home it is a confined fault.
  uint64_t wild_references() const { return wild_references_; }

 private:
  WordReader ReaderFor(SegNo segno);

  LinkageEnvironment* env_;
  bool validate_;
  uint64_t wild_references_ = 0;
};

}  // namespace multics

#endif  // SRC_LINK_LINKER_H_
