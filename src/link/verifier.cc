#include "src/link/verifier.h"

#include <algorithm>

namespace multics {

uint64_t TextDigest(const std::vector<Word>& words) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (Word word : words) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (word >> (b * 8)) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

Result<ObjectModel> ObjectModel::FromTrustedImage(const std::vector<Word>& image) {
  WordReader reader = [&image](WordOffset offset) -> Result<Word> {
    if (offset >= image.size()) {
      return Status::kOutOfRange;
    }
    return image[offset];
  };
  MX_ASSIGN_OR_RETURN(ObjectHeader header,
                      ObjectReader::ReadHeader(reader, static_cast<uint32_t>(image.size()),
                                               /*validate=*/true));
  ObjectModel model;
  model.entry_bound = header.entry_bound;
  model.text_length = header.text_length;
  std::vector<Word> text(image.begin() + header.text_offset,
                         image.begin() + header.text_offset + header.text_length);
  model.text_digest = TextDigest(text);
  MX_ASSIGN_OR_RETURN(model.symbols, ObjectReader::ReadDefs(reader, header));
  std::sort(model.symbols.begin(), model.symbols.end(),
            [](const SymbolDef& a, const SymbolDef& b) { return a.name < b.name; });
  for (uint32_t i = 0; i < header.links_count; ++i) {
    MX_ASSIGN_OR_RETURN(LinkRef link, ObjectReader::ReadLink(reader, header, i));
    model.links.emplace_back(link.target_segment, link.target_symbol);
  }
  return model;
}

Result<VerifyReport> VerifyObject(const WordReader& read, uint32_t segment_words,
                                  const ObjectModel& model) {
  VerifyReport report;
  auto flag = [&report](const std::string& what) {
    report.matches = false;
    report.discrepancies.push_back(what);
  };

  auto header = ObjectReader::ReadHeader(read, segment_words, /*validate=*/true);
  if (!header.ok()) {
    flag("object unreadable or malformed: " + std::string(StatusName(header.status())));
    return report;
  }

  if (header->entry_bound != model.entry_bound) {
    flag("entry bound " + std::to_string(header->entry_bound) + " != model " +
         std::to_string(model.entry_bound) + " (gate surface changed)");
  }
  if (header->text_length != model.text_length) {
    flag("text length " + std::to_string(header->text_length) + " != model " +
         std::to_string(model.text_length));
  } else {
    std::vector<Word> text;
    text.reserve(header->text_length);
    for (WordOffset i = 0; i < header->text_length; ++i) {
      auto word = read(header->text_offset + i);
      if (!word.ok()) {
        flag("text unreadable at " + std::to_string(i));
        return report;
      }
      text.push_back(word.value());
    }
    if (TextDigest(text) != model.text_digest) {
      flag("text digest mismatch (code differs from the certified build)");
    }
  }

  auto defs = ObjectReader::ReadDefs(read, header.value());
  if (!defs.ok()) {
    flag("definitions unreadable");
    return report;
  }
  std::vector<SymbolDef> sorted = defs.value();
  std::sort(sorted.begin(), sorted.end(),
            [](const SymbolDef& a, const SymbolDef& b) { return a.name < b.name; });
  if (sorted.size() != model.symbols.size()) {
    flag("symbol count " + std::to_string(sorted.size()) + " != model " +
         std::to_string(model.symbols.size()) +
         (sorted.size() > model.symbols.size() ? " (possible trapdoor entry)" : ""));
  } else {
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i].name != model.symbols[i].name) {
        flag("symbol '" + sorted[i].name + "' not in model");
      } else if (sorted[i].value != model.symbols[i].value) {
        flag("symbol '" + sorted[i].name + "' moved: " + std::to_string(sorted[i].value) +
             " != " + std::to_string(model.symbols[i].value));
      }
    }
  }

  if (header->links_count != model.links.size()) {
    flag("link count " + std::to_string(header->links_count) + " != model " +
         std::to_string(model.links.size()) + " (unplanned outward dependency)");
  } else {
    for (uint32_t i = 0; i < header->links_count; ++i) {
      auto link = ObjectReader::ReadLink(read, header.value(), i);
      if (!link.ok()) {
        flag("link " + std::to_string(i) + " unreadable");
        continue;
      }
      if (link->target_segment != model.links[i].first ||
          link->target_symbol != model.links[i].second) {
        flag("link " + std::to_string(i) + " targets " + link->target_segment + "$" +
             link->target_symbol + ", model says " + model.links[i].first + "$" +
             model.links[i].second);
      }
    }
  }
  return report;
}

}  // namespace multics
