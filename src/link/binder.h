// The binder: the Multics `bind` tool, rebuilt for this object format.
//
// Binding combines several object segments into one bound object: text
// sections are concatenated, definitions merged (with offsets rebased), and
// every link whose target is another bound component is *internalized* —
// resolved once at bind time so the runtime linker never sees it. Links to
// segments outside the bound set remain as ordinary unsnapped links for the
// dynamic linker.
//
// Binding mattered to the paper's world for exactly the linker-removal
// reasons: every internalized link is a linkage fault that never happens and
// a user-constructed input the (once in-kernel) linker never has to parse.

#ifndef SRC_LINK_BINDER_H_
#define SRC_LINK_BINDER_H_

#include <string>
#include <vector>

#include "src/link/object_format.h"

namespace multics {

// Marker segno stored in internalized (self-referential) snapped links: the
// reference targets the bound segment itself.
inline constexpr SegNo kBoundSelfSegNo = kMaxSegments - 1;

struct BindResult {
  std::vector<Word> image;
  uint32_t components = 0;
  uint32_t symbols = 0;
  uint32_t internalized_links = 0;
  uint32_t external_links = 0;
};

class Binder {
 public:
  // Adds one component (validating its format eagerly). Component names must
  // be unique; symbol names must be unique across the whole bind.
  Status AddComponent(const std::string& name, const std::vector<Word>& image);

  // Produces the bound object.
  Result<BindResult> Bind() const;

  uint32_t component_count() const { return static_cast<uint32_t>(components_.size()); }

 private:
  struct Component {
    std::string name;
    ObjectHeader header;
    std::vector<Word> text;
    std::vector<SymbolDef> defs;
    std::vector<LinkRef> links;
  };

  std::vector<Component> components_;
};

}  // namespace multics

#endif  // SRC_LINK_BINDER_H_
