#include "src/link/linker.h"

namespace multics {

WordReader Linker::ReaderFor(SegNo segno) {
  return [this, segno](WordOffset offset) -> Result<Word> {
    auto word = env_->ReadWord(segno, offset);
    if (!word.ok() && (word.status() == Status::kOutOfRange ||
                       word.status() == Status::kNoSuchSegment)) {
      ++wild_references_;
    }
    return word;
  };
}

Result<ObjectHeader> Linker::Header(SegNo object) {
  MX_ASSIGN_OR_RETURN(uint32_t length, env_->SegmentLengthWords(object));
  return ObjectReader::ReadHeader(ReaderFor(object), length, validate_);
}

Result<WordOffset> Linker::LookupSymbol(SegNo object, const std::string& name) {
  MX_ASSIGN_OR_RETURN(ObjectHeader header, Header(object));
  MX_ASSIGN_OR_RETURN(std::vector<SymbolDef> defs, ObjectReader::ReadDefs(ReaderFor(object), header));
  return ObjectReader::FindSymbol(defs, name);
}

Result<std::pair<SegNo, WordOffset>> Linker::SnapOne(SegNo object, uint32_t link_index) {
  MX_ASSIGN_OR_RETURN(ObjectHeader header, Header(object));
  MX_ASSIGN_OR_RETURN(LinkRef link, ObjectReader::ReadLink(ReaderFor(object), header, link_index));
  if (link.snapped) {
    return std::make_pair(link.snapped_segno, link.snapped_offset);
  }

  // Resolve the target segment through the environment (search rules), then
  // find the symbol in its definitions.
  MX_ASSIGN_OR_RETURN(SegNo target, env_->FindSegment(link.target_segment));
  MX_ASSIGN_OR_RETURN(WordOffset value, LookupSymbol(target, link.target_symbol));

  WordWriter writer = [this, object](WordOffset offset, Word value_in) {
    return env_->WriteWord(object, offset, value_in);
  };
  MX_RETURN_IF_ERROR(ObjectReader::WriteSnapped(writer, header, link_index, target, value));
  return std::make_pair(target, value);
}

Result<LinkSnapResult> Linker::SnapAll(SegNo object) {
  MX_ASSIGN_OR_RETURN(ObjectHeader header, Header(object));
  LinkSnapResult result;
  for (uint32_t i = 0; i < header.links_count; ++i) {
    MX_ASSIGN_OR_RETURN(LinkRef link, ObjectReader::ReadLink(ReaderFor(object), header, i));
    if (link.snapped) {
      ++result.already_snapped;
      continue;
    }
    MX_ASSIGN_OR_RETURN(SegNo target, env_->FindSegment(link.target_segment));
    MX_ASSIGN_OR_RETURN(WordOffset value, LookupSymbol(target, link.target_symbol));
    WordWriter writer = [this, object](WordOffset offset, Word value_in) {
      return env_->WriteWord(object, offset, value_in);
    };
    MX_RETURN_IF_ERROR(ObjectReader::WriteSnapped(writer, header, i, target, value));
    ++result.snapped;
  }
  return result;
}

}  // namespace multics
