#include "src/link/object_format.h"

namespace multics {

void PackName(const std::string& name, Word out[kPackedNameWords]) {
  for (uint32_t w = 0; w < kPackedNameWords; ++w) {
    Word packed = 0;
    for (uint32_t b = 0; b < 8; ++b) {
      size_t index = static_cast<size_t>(w) * 8 + b;
      Word c = index < name.size() ? static_cast<unsigned char>(name[index]) : 0;
      packed |= c << (b * 8);
    }
    out[w] = packed;
  }
}

std::string UnpackName(const Word in[kPackedNameWords]) {
  std::string name;
  for (uint32_t w = 0; w < kPackedNameWords; ++w) {
    for (uint32_t b = 0; b < 8; ++b) {
      char c = static_cast<char>((in[w] >> (b * 8)) & 0xFF);
      if (c == '\0') {
        return name;
      }
      name += c;
    }
  }
  return name;
}

ObjectBuilder& ObjectBuilder::SetText(std::vector<Word> text) {
  text_ = std::move(text);
  return *this;
}

ObjectBuilder& ObjectBuilder::AddSymbol(const std::string& name, WordOffset value) {
  defs_.push_back(SymbolDef{name, value});
  return *this;
}

ObjectBuilder& ObjectBuilder::AddLink(const std::string& target_segment,
                                      const std::string& target_symbol) {
  LinkRef link;
  link.target_segment = target_segment;
  link.target_symbol = target_symbol;
  links_.push_back(std::move(link));
  return *this;
}

ObjectBuilder& ObjectBuilder::SetEntryBound(uint32_t bound) {
  entry_bound_ = bound;
  return *this;
}

std::vector<Word> ObjectBuilder::Build() const {
  const WordOffset text_offset = kObjectHeaderWords;
  const WordOffset defs_offset = text_offset + static_cast<WordOffset>(text_.size());
  const WordOffset links_offset =
      defs_offset + static_cast<WordOffset>(defs_.size()) * kDefRecordWords;
  const uint32_t total =
      links_offset + static_cast<uint32_t>(links_.size()) * kLinkRecordWords;

  std::vector<Word> image(total, 0);
  image[0] = kObjectMagic;
  image[1] = text_offset;
  image[2] = text_.size();
  image[3] = defs_offset;
  image[4] = defs_.size();
  image[5] = links_offset;
  image[6] = links_.size();
  image[7] = entry_bound_;

  std::copy(text_.begin(), text_.end(), image.begin() + text_offset);

  WordOffset at = defs_offset;
  for (const SymbolDef& def : defs_) {
    PackName(def.name, &image[at]);
    image[at + kPackedNameWords] = def.value;
    at += kDefRecordWords;
  }

  at = links_offset;
  for (const LinkRef& link : links_) {
    PackName(link.target_segment, &image[at]);
    PackName(link.target_symbol, &image[at + kPackedNameWords]);
    image[at + 2 * kPackedNameWords] = link.snapped ? 1 : 0;
    image[at + 2 * kPackedNameWords + 1] = link.snapped_segno;
    image[at + 2 * kPackedNameWords + 2] = link.snapped_offset;
    at += kLinkRecordWords;
  }
  return image;
}

Result<ObjectHeader> ObjectReader::ReadHeader(const WordReader& read, uint32_t segment_words,
                                              bool validate) {
  MX_ASSIGN_OR_RETURN(Word magic, read(0));
  if (magic != kObjectMagic) {
    return Status::kBadObjectFormat;
  }
  ObjectHeader header;
  Word fields[7];
  for (WordOffset i = 0; i < 7; ++i) {
    MX_ASSIGN_OR_RETURN(fields[i], read(i + 1));
  }
  header.text_offset = static_cast<WordOffset>(fields[0]);
  header.text_length = static_cast<uint32_t>(fields[1]);
  header.defs_offset = static_cast<WordOffset>(fields[2]);
  header.defs_count = static_cast<uint32_t>(fields[3]);
  header.links_offset = static_cast<WordOffset>(fields[4]);
  header.links_count = static_cast<uint32_t>(fields[5]);
  header.entry_bound = static_cast<uint32_t>(fields[6]);

  if (validate) {
    // Every section must lie inside the segment, with no overflow tricks.
    const uint64_t text_end = static_cast<uint64_t>(header.text_offset) + header.text_length;
    const uint64_t defs_end = static_cast<uint64_t>(header.defs_offset) +
                              static_cast<uint64_t>(header.defs_count) * kDefRecordWords;
    const uint64_t links_end = static_cast<uint64_t>(header.links_offset) +
                               static_cast<uint64_t>(header.links_count) * kLinkRecordWords;
    if (text_end > segment_words || defs_end > segment_words || links_end > segment_words ||
        header.text_offset < kObjectHeaderWords || header.defs_offset < kObjectHeaderWords ||
        header.links_offset < kObjectHeaderWords) {
      return Status::kBadObjectFormat;
    }
  }
  return header;
}

Result<std::vector<SymbolDef>> ObjectReader::ReadDefs(const WordReader& read,
                                                      const ObjectHeader& header) {
  std::vector<SymbolDef> defs;
  defs.reserve(header.defs_count);
  for (uint32_t i = 0; i < header.defs_count; ++i) {
    const WordOffset at = header.defs_offset + i * kDefRecordWords;
    Word packed[kPackedNameWords];
    for (uint32_t w = 0; w < kPackedNameWords; ++w) {
      MX_ASSIGN_OR_RETURN(packed[w], read(at + w));
    }
    MX_ASSIGN_OR_RETURN(Word value, read(at + kPackedNameWords));
    defs.push_back(SymbolDef{UnpackName(packed), static_cast<WordOffset>(value)});
  }
  return defs;
}

Result<LinkRef> ObjectReader::ReadLink(const WordReader& read, const ObjectHeader& header,
                                       uint32_t index) {
  if (index >= header.links_count) {
    return Status::kOutOfRange;
  }
  const WordOffset at = header.links_offset + index * kLinkRecordWords;
  Word seg_name[kPackedNameWords];
  Word sym_name[kPackedNameWords];
  for (uint32_t w = 0; w < kPackedNameWords; ++w) {
    MX_ASSIGN_OR_RETURN(seg_name[w], read(at + w));
    MX_ASSIGN_OR_RETURN(sym_name[w], read(at + kPackedNameWords + w));
  }
  LinkRef link;
  link.target_segment = UnpackName(seg_name);
  link.target_symbol = UnpackName(sym_name);
  MX_ASSIGN_OR_RETURN(Word snapped, read(at + 2 * kPackedNameWords));
  MX_ASSIGN_OR_RETURN(Word segno, read(at + 2 * kPackedNameWords + 1));
  MX_ASSIGN_OR_RETURN(Word offset, read(at + 2 * kPackedNameWords + 2));
  link.snapped = snapped != 0;
  link.snapped_segno = static_cast<SegNo>(segno);
  link.snapped_offset = static_cast<WordOffset>(offset);
  return link;
}

Status ObjectReader::WriteSnapped(const WordWriter& write, const ObjectHeader& header,
                                  uint32_t index, SegNo segno, WordOffset offset) {
  if (index >= header.links_count) {
    return Status::kOutOfRange;
  }
  const WordOffset at = header.links_offset + index * kLinkRecordWords;
  MX_RETURN_IF_ERROR(write(at + 2 * kPackedNameWords, 1));
  MX_RETURN_IF_ERROR(write(at + 2 * kPackedNameWords + 1, segno));
  return write(at + 2 * kPackedNameWords + 2, offset);
}

Result<WordOffset> ObjectReader::FindSymbol(const std::vector<SymbolDef>& defs,
                                            const std::string& name) {
  for (const SymbolDef& def : defs) {
    if (def.name == name) {
      return def.value;
    }
  }
  return Status::kSymbolNotFound;
}

std::vector<Word> CorruptObjectImage(std::vector<Word> image, Rng& rng) {
  if (image.empty()) {
    return image;
  }
  switch (rng.NextBelow(5)) {
    case 0: {
      // Wild section offset.
      size_t field = 1 + rng.NextBelow(6);
      image[std::min(field, image.size() - 1)] = rng.Next() % (kMaxSegmentWords * 4);
      break;
    }
    case 1: {
      // Huge count.
      size_t field = rng.NextBool(0.5) ? 4 : 6;
      if (field < image.size()) {
        image[field] = 1ULL << rng.NextInRange(10, 30);
      }
      break;
    }
    case 2: {
      // Garbage a random word.
      image[rng.NextBelow(image.size())] = rng.Next();
      break;
    }
    case 3: {
      // Truncate the image (header promises more than exists).
      image.resize(std::max<size_t>(kObjectHeaderWords, image.size() / 2));
      break;
    }
    case 4: {
      // Overlapping sections.
      if (image.size() > 6) {
        image[5] = image[3];  // links_offset = defs_offset
      }
      break;
    }
  }
  return image;
}

}  // namespace multics
