// The simulated object-segment format the dynamic linker operates on.
//
// A translated program in Multics was an object segment containing the text,
// a definitions section (symbols this segment exports), and a linkage
// section of outward references to <segment>$<symbol> pairs, initially in
// "unsnapped" (fault-on-use) form. The linker's job is to snap those links.
//
// Layout (word offsets):
//   0      magic
//   1..2   text offset, text length
//   3..4   defs offset, defs count
//   5..6   links offset, links count
//   7      entry bound (number of gate entry points, for protected subsystems)
//   ...    sections
//
// A symbol definition is 5 words: 4 words of packed name + value offset.
// A link is 11 words: 4+4 words of packed target segment / symbol names,
// snapped flag, snapped segno, snapped offset.
//
// The reader has two modes. `validate=true` bounds-checks every offset and
// count against the segment length before use (what a correct, paranoid
// linker must do, since the whole image is user-constructed input).
// `validate=false` reproduces the legacy in-kernel linker's sin of trusting
// the header — the paper's "especially vulnerable" mechanism (E10).

#ifndef SRC_LINK_OBJECT_FORMAT_H_
#define SRC_LINK_OBJECT_FORMAT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/random.h"
#include "src/base/result.h"
#include "src/hw/word.h"

namespace multics {

inline constexpr Word kObjectMagic = 0x4F424A5F4D554C54ULL;  // "OBJ_MULT"
inline constexpr uint32_t kObjectHeaderWords = 8;
inline constexpr uint32_t kPackedNameWords = 4;   // 32 characters.
inline constexpr uint32_t kDefRecordWords = kPackedNameWords + 1;
inline constexpr uint32_t kLinkRecordWords = 2 * kPackedNameWords + 3;

struct ObjectHeader {
  WordOffset text_offset = 0;
  uint32_t text_length = 0;
  WordOffset defs_offset = 0;
  uint32_t defs_count = 0;
  WordOffset links_offset = 0;
  uint32_t links_count = 0;
  uint32_t entry_bound = 0;
};

struct SymbolDef {
  std::string name;
  WordOffset value = 0;
};

struct LinkRef {
  std::string target_segment;
  std::string target_symbol;
  bool snapped = false;
  SegNo snapped_segno = 0;
  WordOffset snapped_offset = 0;
};

// Name packing: 8 characters per word, NUL padded.
void PackName(const std::string& name, Word out[kPackedNameWords]);
std::string UnpackName(const Word in[kPackedNameWords]);

// Builds a serialized object segment image.
class ObjectBuilder {
 public:
  ObjectBuilder& SetText(std::vector<Word> text);
  ObjectBuilder& AddSymbol(const std::string& name, WordOffset value);
  ObjectBuilder& AddLink(const std::string& target_segment, const std::string& target_symbol);
  ObjectBuilder& SetEntryBound(uint32_t bound);

  std::vector<Word> Build() const;

 private:
  std::vector<Word> text_;
  std::vector<SymbolDef> defs_;
  std::vector<LinkRef> links_;
  uint32_t entry_bound_ = 0;
};

// Word-granular access to a (possibly paged) segment.
using WordReader = std::function<Result<Word>(WordOffset)>;
using WordWriter = std::function<Status(WordOffset, Word)>;

class ObjectReader {
 public:
  // `segment_words` is the segment's length; in validating mode every
  // section must fit inside it.
  static Result<ObjectHeader> ReadHeader(const WordReader& read, uint32_t segment_words,
                                         bool validate);
  static Result<std::vector<SymbolDef>> ReadDefs(const WordReader& read,
                                                 const ObjectHeader& header);
  static Result<LinkRef> ReadLink(const WordReader& read, const ObjectHeader& header,
                                  uint32_t index);
  static Status WriteSnapped(const WordWriter& write, const ObjectHeader& header, uint32_t index,
                             SegNo segno, WordOffset offset);
  static Result<WordOffset> FindSymbol(const std::vector<SymbolDef>& defs,
                                       const std::string& name);
};

// Fuzzing support for E10: returns the image with one random structural
// corruption (header field, count, offset, or record bytes).
std::vector<Word> CorruptObjectImage(std::vector<Word> image, Rng& rng);

}  // namespace multics

#endif  // SRC_LINK_OBJECT_FORMAT_H_
