// The Mitre access-constraint model the paper's footnote (2) describes: a
// lattice of compartments consistent with the national security
// classification scheme — a total order of sensitivity levels crossed with a
// powerset of need-to-know categories. Information may flow only upward in
// the lattice (what became the Bell–LaPadula simple-security and *-property
// rules).

#ifndef SRC_MLS_LABEL_H_
#define SRC_MLS_LABEL_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"

namespace multics {

enum class SensitivityLevel : uint8_t {
  kUnclassified = 0,
  kConfidential = 1,
  kSecret = 2,
  kTopSecret = 3,
};

inline constexpr int kSensitivityLevels = 4;
inline constexpr int kCategoryCount = 18;  // Multics AIM supported 18 categories.

const char* SensitivityLevelName(SensitivityLevel level);

// Need-to-know categories as a bitset.
class CategorySet {
 public:
  CategorySet() = default;
  explicit CategorySet(uint32_t bits) : bits_(bits & kMask) {}

  static CategorySet Of(std::initializer_list<int> categories);

  bool Contains(int category) const { return (bits_ >> category) & 1u; }
  CategorySet With(int category) const { return CategorySet(bits_ | (1u << category)); }
  CategorySet Without(int category) const { return CategorySet(bits_ & ~(1u << category)); }

  bool IsSubsetOf(const CategorySet& other) const { return (bits_ & ~other.bits_) == 0; }
  CategorySet Union(const CategorySet& other) const { return CategorySet(bits_ | other.bits_); }
  CategorySet Intersect(const CategorySet& other) const {
    return CategorySet(bits_ & other.bits_);
  }

  uint32_t bits() const { return bits_; }
  int Count() const;
  bool Empty() const { return bits_ == 0; }

  bool operator==(const CategorySet&) const = default;

 private:
  static constexpr uint32_t kMask = (1u << kCategoryCount) - 1;
  uint32_t bits_ = 0;
};

// A point in the lattice: (level, categories).
struct MlsLabel {
  SensitivityLevel level = SensitivityLevel::kUnclassified;
  CategorySet categories;

  bool operator==(const MlsLabel&) const = default;

  std::string ToString() const;

  // Lattice order: a dominates b iff a.level >= b.level and
  // b.categories ⊆ a.categories.
  bool Dominates(const MlsLabel& other) const;

  // True when neither label dominates the other.
  bool IsIncomparableWith(const MlsLabel& other) const;

  static MlsLabel SystemLow() { return MlsLabel{}; }
  static MlsLabel SystemHigh();

  // Least upper bound / greatest lower bound in the lattice.
  static MlsLabel Lub(const MlsLabel& a, const MlsLabel& b);
  static MlsLabel Glb(const MlsLabel& a, const MlsLabel& b);
};

// The flow rules the bottom layer of the kernel enforces.
//
// Simple security (no read up): a subject at `subject` may observe an object
// at `object` only if subject dominates object.
bool MlsCanRead(const MlsLabel& subject, const MlsLabel& object);

// *-property (no write down): a subject at `subject` may modify an object at
// `object` only if object dominates subject.
bool MlsCanWrite(const MlsLabel& subject, const MlsLabel& object);

// Parse "secret:{1,3}" / "unclassified" style strings (tests and examples).
Result<MlsLabel> ParseMlsLabel(const std::string& text);

}  // namespace multics

#endif  // SRC_MLS_LABEL_H_
