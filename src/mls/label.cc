#include "src/mls/label.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace multics {

const char* SensitivityLevelName(SensitivityLevel level) {
  switch (level) {
    case SensitivityLevel::kUnclassified:
      return "unclassified";
    case SensitivityLevel::kConfidential:
      return "confidential";
    case SensitivityLevel::kSecret:
      return "secret";
    case SensitivityLevel::kTopSecret:
      return "top-secret";
  }
  return "?";
}

CategorySet CategorySet::Of(std::initializer_list<int> categories) {
  uint32_t bits = 0;
  for (int c : categories) {
    if (c >= 0 && c < kCategoryCount) {
      bits |= 1u << c;
    }
  }
  return CategorySet(bits);
}

int CategorySet::Count() const { return std::popcount(bits_); }

std::string MlsLabel::ToString() const {
  std::ostringstream os;
  os << SensitivityLevelName(level);
  if (!categories.Empty()) {
    os << ":{";
    bool first = true;
    for (int c = 0; c < kCategoryCount; ++c) {
      if (categories.Contains(c)) {
        if (!first) {
          os << ",";
        }
        os << c;
        first = false;
      }
    }
    os << "}";
  }
  return os.str();
}

bool MlsLabel::Dominates(const MlsLabel& other) const {
  return level >= other.level && other.categories.IsSubsetOf(categories);
}

bool MlsLabel::IsIncomparableWith(const MlsLabel& other) const {
  return !Dominates(other) && !other.Dominates(*this);
}

MlsLabel MlsLabel::SystemHigh() {
  MlsLabel label;
  label.level = SensitivityLevel::kTopSecret;
  label.categories = CategorySet((1u << kCategoryCount) - 1);
  return label;
}

MlsLabel MlsLabel::Lub(const MlsLabel& a, const MlsLabel& b) {
  MlsLabel out;
  out.level = std::max(a.level, b.level);
  out.categories = a.categories.Union(b.categories);
  return out;
}

MlsLabel MlsLabel::Glb(const MlsLabel& a, const MlsLabel& b) {
  MlsLabel out;
  out.level = std::min(a.level, b.level);
  out.categories = a.categories.Intersect(b.categories);
  return out;
}

bool MlsCanRead(const MlsLabel& subject, const MlsLabel& object) {
  return subject.Dominates(object);
}

bool MlsCanWrite(const MlsLabel& subject, const MlsLabel& object) {
  return object.Dominates(subject);
}

Result<MlsLabel> ParseMlsLabel(const std::string& text) {
  MlsLabel label;
  std::string levels = text;
  std::string cats;
  auto colon = text.find(':');
  if (colon != std::string::npos) {
    levels = text.substr(0, colon);
    cats = text.substr(colon + 1);
  }

  if (levels == "unclassified" || levels == "u") {
    label.level = SensitivityLevel::kUnclassified;
  } else if (levels == "confidential" || levels == "c") {
    label.level = SensitivityLevel::kConfidential;
  } else if (levels == "secret" || levels == "s") {
    label.level = SensitivityLevel::kSecret;
  } else if (levels == "top-secret" || levels == "ts") {
    label.level = SensitivityLevel::kTopSecret;
  } else {
    return Status::kInvalidArgument;
  }

  if (!cats.empty()) {
    if (cats.front() != '{' || cats.back() != '}') {
      return Status::kInvalidArgument;
    }
    std::istringstream is(cats.substr(1, cats.size() - 2));
    std::string item;
    while (std::getline(is, item, ',')) {
      if (item.empty()) {
        continue;
      }
      int c = 0;
      try {
        c = std::stoi(item);
      } catch (...) {
        return Status::kInvalidArgument;
      }
      if (c < 0 || c >= kCategoryCount) {
        return Status::kOutOfRange;
      }
      label.categories = label.categories.With(c);
    }
  }
  return label;
}

}  // namespace multics
