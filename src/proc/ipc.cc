#include "src/proc/ipc.h"

#include "src/meter/meter.h"

namespace multics {

ChannelId EventChannelTable::Create(ProcessId owner, uint64_t guard_uid) {
  ChannelId id = next_id_++;
  Channel channel;
  channel.owner = owner;
  channel.guard_uid = guard_uid;
  channels_[id] = std::move(channel);
  if (meter_ != nullptr) {
    meter_->Count("ipc/channels_created");
  }
  return id;
}

Status EventChannelTable::Destroy(ChannelId id) {
  return channels_.erase(id) > 0 ? Status::kOk : Status::kNoSuchChannel;
}

Result<ProcessId> EventChannelTable::OwnerOf(ChannelId id) const {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    return Status::kNoSuchChannel;
  }
  return it->second.owner;
}

Result<uint64_t> EventChannelTable::GuardOf(ChannelId id) const {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    return Status::kNoSuchChannel;
  }
  return it->second.guard_uid;
}

Result<ProcessId> EventChannelTable::Wakeup(ChannelId id, EventMessage message) {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    return Status::kNoSuchChannel;
  }
  it->second.queue.push_back(message);
  ++total_wakeups_;
  if (meter_ != nullptr) {
    meter_->Count("ipc/wakeups_queued");
  }
  ProcessId waiter = it->second.waiter;
  it->second.waiter = kNoProcess;
  return waiter;
}

Result<EventMessage> EventChannelTable::TryReceive(ChannelId id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    return Status::kNoSuchChannel;
  }
  if (it->second.queue.empty()) {
    return Status::kNotFound;
  }
  EventMessage message = it->second.queue.front();
  it->second.queue.pop_front();
  if (meter_ != nullptr) {
    meter_->Count("ipc/receives");
  }
  return message;
}

Result<uint64_t> EventChannelTable::QueueLength(ChannelId id) const {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    return Status::kNoSuchChannel;
  }
  return static_cast<uint64_t>(it->second.queue.size());
}

bool EventChannelTable::HasEvents(ChannelId id) const {
  auto it = channels_.find(id);
  return it != channels_.end() && !it->second.queue.empty();
}

Status EventChannelTable::SetWaiter(ChannelId id, ProcessId waiter) {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    return Status::kNoSuchChannel;
  }
  it->second.waiter = waiter;
  return Status::kOk;
}

Status EventChannelTable::ClearWaiter(ChannelId id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    return Status::kNoSuchChannel;
  }
  it->second.waiter = kNoProcess;
  return Status::kOk;
}

}  // namespace multics
