#include <algorithm>
#include "src/proc/traffic_controller.h"

#include "src/base/log.h"

namespace multics {

// --- TaskContext ----------------------------------------------------------------

Machine& TaskContext::machine() { return *controller_->machine_; }

void TaskContext::Charge(Cycles n, const char* category) {
  controller_->machine_->Charge(n, category);
  self_->accounting().cpu_used += n;
}

bool TaskContext::Await(ChannelId channel) {
  Machine* machine = controller_->machine_;
  LockGuard traffic(machine->locks().Traffic());
  auto message = controller_->channels_.TryReceive(channel);
  if (message.ok()) {
    last_message_ = message.value();
    return true;
  }
  (void)controller_->channels_.SetWaiter(channel, self_->pid());
  self_->set_blocked_on(channel);
  machine->Charge(machine->costs().block, "ipc");
  machine->meter().Emit(TraceEventKind::kIpcBlock, "ipc_block", channel);
  return false;
}

Status TaskContext::Wakeup(ChannelId channel, uint64_t data) {
  return controller_->Wakeup(channel, EventMessage{data, self_->pid()});
}

// --- TrafficController ----------------------------------------------------------

TrafficController::TrafficController(Machine* machine, uint32_t virtual_processors)
    : machine_(machine), vp_count_(virtual_processors) {
  channels_.AttachMeter(&machine_->meter());
}

bool TrafficController::IsDedicated(const Process* process) const {
  for (const Process* d : dedicated_) {
    if (d == process) {
      return true;
    }
  }
  return false;
}

void TrafficController::set_two_layer(bool enabled) {
  if (two_layer_ && !enabled) {
    // Collapse layer 1: dedicated processes join the common ready queue.
    for (Process* d : dedicated_) {
      if (d->state() == TaskState::kReady) {
        ready_queue_.push_back(d);
      }
    }
  }
  two_layer_ = enabled;
}

Result<Process*> TrafficController::CreateProcess(const std::string& name,
                                                  const Principal& principal,
                                                  const MlsLabel& clearance, RingNumber ring,
                                                  std::unique_ptr<Task> program,
                                                  bool dedicated) {
  if (dedicated && dedicated_.size() + 1 >= vp_count_) {
    return Status::kProcessLimit;  // Must leave at least one shared VP.
  }
  ProcessId pid = next_pid_++;
  auto process =
      std::make_unique<Process>(pid, name, principal, clearance, ring, std::move(program));
  Process* raw = process.get();
  processes_[pid] = std::move(process);
  machine_->meter().LabelProcess(pid, name);
  if (dedicated) {
    dedicated_.push_back(raw);
    if (!two_layer_) {
      ready_queue_.push_back(raw);
    }
  } else {
    ready_queue_.push_back(raw);
  }
  return raw;
}

Process* TrafficController::Find(ProcessId pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void TrafficController::MakeReady(Process* process) {
  if (process->state() == TaskState::kDone) {
    return;
  }
  bool was_blocked = process->state() == TaskState::kBlocked;
  process->set_state(TaskState::kReady);
  process->set_blocked_on(0);
  // The process cannot run before the instant that readied it: a dispatching
  // CPU pulls its local clock up to here first.
  process->set_ready_since(machine_->clock().now());
  // Dedicated processes (two-layer mode) are polled in PickNext; everyone
  // else queues. A blocked->ready transition must requeue because blocked
  // processes are not in the queue.
  bool polled = two_layer_ && IsDedicated(process);
  if (!polled && was_blocked) {
    ready_queue_.push_back(process);
  }
}

Status TrafficController::Wakeup(ChannelId channel, EventMessage message) {
  LockGuard traffic(machine_->locks().Traffic());
  auto waiter = channels_.Wakeup(channel, message);
  if (!waiter.ok()) {
    return waiter.status();
  }
  machine_->Charge(machine_->costs().wakeup, "ipc");
  machine_->meter().Emit(TraceEventKind::kIpcWakeup, "ipc_wakeup", channel);
  if (waiter.value() != kNoProcess) {
    if (Process* process = Find(waiter.value()); process != nullptr) {
      MakeReady(process);
      // A wakeup aimed at a process whose last home is another CPU is
      // delivered there with a connect interrupt, as on the real 6180.
      if (machine_->cpu_count() > 1 && process->state() == TaskState::kReady &&
          process->last_cpu() != Process::kNoCpu &&
          process->last_cpu() != machine_->active_cpu()) {
        machine_->PostConnect(process->last_cpu());
      }
    }
  }
  return Status::kOk;
}

Status TrafficController::RegisterInlineHandler(InterruptLine line, Cycles work,
                                                ChannelId completion_channel) {
  if (line >= machine_->interrupts().line_count()) {
    return Status::kInvalidArgument;
  }
  handlers_[line] = HandlerSpec{true, work, completion_channel};
  return Status::kOk;
}

Status TrafficController::RegisterInterruptProcess(InterruptLine line, ChannelId channel) {
  if (line >= machine_->interrupts().line_count()) {
    return Status::kInvalidArgument;
  }
  if (!channels_.Exists(channel)) {
    return Status::kNoSuchChannel;
  }
  handlers_[line] = HandlerSpec{false, 0, channel};
  return Status::kOk;
}

void TrafficController::RecordInterruptLatency(Cycles asserted_at) {
  interrupt_latency_.Add(static_cast<double>(machine_->clock().now() - asserted_at));
}

void TrafficController::DispatchPendingInterrupts() {
  InterruptEvent ev;
  while (machine_->interrupts().TakePending(&ev)) {
    auto it = handlers_.find(ev.line);
    if (it == handlers_.end()) {
      continue;  // Unregistered line: dropped, as real hardware masks do.
    }
    const HandlerSpec& spec = it->second;
    const CostModel& costs = machine_->costs();
    machine_->meter().Emit(TraceEventKind::kInterrupt, "interrupt", ev.line);
    if (interrupt_strategy_ == InterruptStrategy::kInlineInCurrentProcess || spec.inline_mode) {
      // The handler inhabits whatever process was running: its full body
      // executes now, on the interrupted VP, and the victim pays.
      machine_->Charge(costs.interrupt_entry + spec.work + costs.interrupt_exit,
                       "interrupt_inline");
      if (last_running_ != nullptr) {
        last_running_->accounting().stolen_by_interrupts +=
            costs.interrupt_entry + spec.work + costs.interrupt_exit;
      }
      RecordInterruptLatency(ev.asserted_at);
      if (spec.channel != 0) {
        (void)Wakeup(spec.channel, EventMessage{ev.payload, kNoProcess});
      }
    } else {
      // The interceptor just turns the interrupt into a wakeup; the handler
      // process does the work on its own virtual processor.
      machine_->Charge(costs.interrupt_entry, "interrupt_intercept");
      (void)Wakeup(spec.channel, EventMessage{ev.asserted_at, kNoProcess});
    }
  }
}

uint32_t TrafficController::PickCpu() const {
  uint32_t best = 0;
  for (uint32_t cpu = 1; cpu < machine_->cpu_count(); ++cpu) {
    if (machine_->local_clock(cpu) < machine_->local_clock(best)) {
      best = cpu;
    }
  }
  return best;
}

Process* TrafficController::LastOn(uint32_t cpu) {
  return cpu < last_on_cpu_.size() ? last_on_cpu_[cpu] : nullptr;
}

void TrafficController::SetLastOn(uint32_t cpu, Process* process) {
  if (cpu >= last_on_cpu_.size()) {
    last_on_cpu_.resize(machine_->cpu_count(), nullptr);
  }
  last_on_cpu_[cpu] = process;
}

Process* TrafficController::PickNextFor(uint32_t cpu) {
  if (two_layer_) {
    // Dedicated virtual processors first: round-robin over ready ones. Any
    // CPU polls them, so a dedicated kernel process never loses its virtual
    // processor to affinity.
    const size_t n = dedicated_.size();
    for (size_t i = 0; i < n; ++i) {
      Process* candidate = dedicated_[(dedicated_cursor_ + i) % n];
      if (candidate->state() == TaskState::kReady) {
        dedicated_cursor_ = (dedicated_cursor_ + i + 1) % n;
        return candidate;
      }
    }
  }
  // Drop stale front entries exactly as the uniprocessor scheduler did.
  while (!ready_queue_.empty()) {
    Process* front = ready_queue_.front();
    if ((two_layer_ && IsDedicated(front)) || front->state() != TaskState::kReady) {
      ready_queue_.pop_front();
      continue;
    }
    break;
  }
  if (ready_queue_.empty()) {
    return nullptr;
  }
  // Every CPU takes the queue head, exactly as on the uniprocessor. The 6180's
  // CPUs had no caches, so there is nothing for a process to "warm up" on the
  // CPU it last ran on; reordering the queue for affinity only lets a CPU
  // re-run its own process past older waiters and starve them. Affinity lives
  // where the real system put it instead: a wakeup for a process whose last
  // home is another CPU sends the connect interrupt there (see Wakeup), and
  // the dispatcher charges a process switch only when the CPU actually
  // changes processes.
  Process* candidate = ready_queue_.front();
  ready_queue_.pop_front();
  return candidate;
}

bool TrafficController::RunSlice() {
  // Deliver everything that has already happened, then take interrupts.
  machine_->events().RunUntil(machine_->clock().now());
  DispatchPendingInterrupts();

  const uint32_t cpu = PickCpu();
  machine_->SetActiveCpu(cpu);
  if (machine_->cpu_count() > 1) {
    (void)machine_->TakeConnect(cpu);  // The connect got us here; consume it.
  }

  Process* next = PickNextFor(cpu);
  if (next == nullptr) {
    // Idle: jump to the next external event if there is one. Every CPU was
    // out of work, so all local clocks fast-forward to the event, uncharged —
    // a blocked CPU burns no accounted cycles.
    if (machine_->events().RunOne()) {
      ++idle_jumps_;
      machine_->FastForwardAllCpus(machine_->clock().now());
      DispatchPendingInterrupts();
      return true;
    }
    return false;
  }
  // The wakeup that readied this process happened at global time
  // ready_since(); this CPU cannot have run it earlier than that.
  machine_->FastForwardActiveCpu(next->ready_since());

  const bool switched = next != LastOn(cpu);
  if (switched) {
    ++context_switches_;
    machine_->Charge(machine_->costs().process_switch, "scheduler");
  }
  SetLastOn(cpu, next);
  last_running_ = next;

  // Install the process's causal context (and {pid, ring} attribution) for
  // the duration of the step, so every span and event the step records is
  // attributed to this process and nests in its own span tree.
  Meter& meter = machine_->meter();
  TraceContext* previous_context = meter.SetContext(&next->trace_context());
  if (switched) {
    meter.Emit(TraceEventKind::kDispatch, "dispatch", next->pid());
  }
  TaskContext ctx(this, next);
  TaskState state = next->program()->Step(ctx);
  meter.SetContext(previous_context);
  ++next->accounting().dispatches;
  next->set_last_cpu(cpu);
  next->set_state(state);
  switch (state) {
    case TaskState::kReady: {
      if (!(two_layer_ && IsDedicated(next))) {
        ready_queue_.push_back(next);
      }
      break;
    }
    case TaskState::kBlocked: {
      // A wakeup may have raced in during the step: if the channel already
      // has events, the process is still runnable.
      if (next->blocked_on() != 0 && channels_.HasEvents(next->blocked_on())) {
        MakeReady(next);
      }
      break;
    }
    case TaskState::kDone:
      break;
  }
  return true;
}

uint64_t TrafficController::RunUntil(Cycles deadline) {
  uint64_t slices = 0;
  while (machine_->clock().now() < deadline && RunSlice()) {
    ++slices;
  }
  machine_->clock().AdvanceTo(deadline);
  return slices;
}

uint64_t TrafficController::RunUntilQuiescent(uint64_t max_slices) {
  uint64_t slices = 0;
  while (slices < max_slices) {
    bool user_work_left = false;
    for (auto& [pid, process] : processes_) {
      if (!IsDedicated(process.get()) && process->state() != TaskState::kDone) {
        user_work_left = true;
        break;
      }
    }
    if (!user_work_left) {
      break;
    }
    if (!RunSlice()) {
      break;  // Deadlocked or everyone blocked with no pending events.
    }
    ++slices;
  }
  return slices;
}

}  // namespace multics
