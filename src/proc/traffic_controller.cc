#include <algorithm>
#include "src/proc/traffic_controller.h"

#include "src/base/log.h"
#include "src/meter/host_profile.h"

namespace multics {

// --- TaskContext ----------------------------------------------------------------

Machine& TaskContext::machine() { return *controller_->machine_; }

void TaskContext::Charge(Cycles n, const char* category) {
  controller_->machine_->Charge(n, category);
  self_->accounting().cpu_used += n;
}

bool TaskContext::Await(ChannelId channel) {
  Machine* machine = controller_->machine_;
  LockGuard traffic(machine->locks().Traffic());
  auto message = controller_->channels_.TryReceive(channel);
  if (message.ok()) {
    last_message_ = message.value();
    return true;
  }
  (void)controller_->channels_.SetWaiter(channel, self_->pid());
  self_->set_blocked_on(channel);
  machine->Charge(machine->costs().block, "ipc");
  machine->meter().Emit(TraceEventKind::kIpcBlock, "ipc_block", channel);
  return false;
}

Status TaskContext::Wakeup(ChannelId channel, uint64_t data) {
  return controller_->Wakeup(channel, EventMessage{data, self_->pid()});
}

// --- TrafficController ----------------------------------------------------------

TrafficController::TrafficController(Machine* machine, uint32_t virtual_processors)
    : machine_(machine), vp_count_(virtual_processors) {
  channels_.AttachMeter(&machine_->meter());
  classes_.push_back(WorkClass{"system", 4, 0, 0});
  run_queues_.resize(machine_->cpu_count());
  for (auto& per_cpu : run_queues_) {
    per_cpu.resize(1);
  }
}

uint32_t TrafficController::DefineWorkClass(const std::string& name, uint32_t weight) {
  CHECK_GE(weight, 1u) << "work class " << name << " needs a positive weight";
  classes_.push_back(WorkClass{name, weight, 0, 0});
  for (auto& per_cpu : run_queues_) {
    per_cpu.resize(classes_.size());
  }
  return static_cast<uint32_t>(classes_.size() - 1);
}

Status TrafficController::AssignWorkClass(Process* process, uint32_t work_class) {
  if (work_class >= classes_.size()) {
    return Status::kInvalidArgument;
  }
  if (process->work_class() == work_class) {
    return Status::kOk;
  }
  const bool queued = process->in_run_queue();
  if (queued) {
    RemoveFromQueues(process);
  }
  process->set_work_class(work_class);
  if (queued) {
    Enqueue(process);
  }
  return Status::kOk;
}

void TrafficController::EnableDispatchTrace(size_t limit) {
  trace_limit_ = limit;
  dispatch_trace_.clear();
  if (limit > 0) {
    dispatch_trace_.reserve(limit);
  }
}

uint32_t TrafficController::HomeCpu(Process* process) {
  if (process->last_cpu() != Process::kNoCpu && process->last_cpu() < machine_->cpu_count()) {
    return process->last_cpu();
  }
  return next_home_cpu_++ % machine_->cpu_count();
}

size_t TrafficController::CpuQueued(uint32_t cpu) const {
  size_t total = 0;
  for (const RunQueue& rq : run_queues_[cpu]) {
    total += rq.count;
  }
  return total;
}

void TrafficController::Enqueue(Process* process) {
  MX_HOST_SPAN(kScheduler);
  // The double-insert guard: a blocked->ready transition (or any requeue)
  // must never insert a process that is already sitting in a run queue.
  CHECK(!process->in_run_queue()) << "double-insert of process " << process->pid();
  process->set_in_run_queue(true);
  if (policy_ == SchedulerPolicy::kFifo) {
    ready_queue_.push_back(process);
    return;
  }
  const uint32_t cpu = HomeCpu(process);
  RunQueue& rq = run_queues_[cpu][process->work_class()];
  rq.level[process->sched_level()].push_back(process);
  ++rq.count;
}

void TrafficController::RemoveFromQueues(Process* process) {
  MX_HOST_SPAN(kScheduler);
  if (policy_ == SchedulerPolicy::kFifo) {
    for (auto it = ready_queue_.begin(); it != ready_queue_.end(); ++it) {
      if (*it == process) {
        ready_queue_.erase(it);
        process->set_in_run_queue(false);
        return;
      }
    }
  } else {
    for (auto& per_cpu : run_queues_) {
      for (RunQueue& rq : per_cpu) {
        for (auto& level : rq.level) {
          for (auto it = level.begin(); it != level.end(); ++it) {
            if (*it == process) {
              level.erase(it);
              --rq.count;
              process->set_in_run_queue(false);
              return;
            }
          }
        }
      }
    }
  }
  CHECK(false) << "process " << process->pid() << " flagged in_run_queue but not found";
}

void TrafficController::SetSchedulerPolicy(SchedulerPolicy policy) {
  if (policy == policy_) {
    return;
  }
  // Drain every queued process in a deterministic order (FIFO order, or CPU
  // then class then level order), then re-enqueue under the new policy.
  std::vector<Process*> queued;
  if (policy_ == SchedulerPolicy::kFifo) {
    queued.assign(ready_queue_.begin(), ready_queue_.end());
    ready_queue_.clear();
  } else {
    for (auto& per_cpu : run_queues_) {
      for (RunQueue& rq : per_cpu) {
        for (auto& level : rq.level) {
          queued.insert(queued.end(), level.begin(), level.end());
          level.clear();
        }
        rq.count = 0;
      }
    }
  }
  for (Process* p : queued) {
    p->set_in_run_queue(false);
  }
  policy_ = policy;
  for (Process* p : queued) {
    Enqueue(p);
  }
}

bool TrafficController::IsDedicated(const Process* process) const {
  for (const Process* d : dedicated_) {
    if (d == process) {
      return true;
    }
  }
  return false;
}

void TrafficController::set_two_layer(bool enabled) {
  if (two_layer_ && !enabled) {
    // Collapse layer 1: dedicated processes join the common run queues. The
    // in_run_queue guard keeps a re-collapse from inserting one twice.
    for (Process* d : dedicated_) {
      if (d->state() == TaskState::kReady && !d->in_run_queue()) {
        Enqueue(d);
      }
    }
  }
  two_layer_ = enabled;
}

Result<Process*> TrafficController::CreateProcess(const std::string& name,
                                                  const Principal& principal,
                                                  const MlsLabel& clearance, RingNumber ring,
                                                  std::unique_ptr<Task> program,
                                                  bool dedicated) {
  if (dedicated && dedicated_.size() + 1 >= vp_count_) {
    return Status::kProcessLimit;  // Must leave at least one shared VP.
  }
  ProcessId pid = next_pid_++;
  auto process =
      std::make_unique<Process>(pid, name, principal, clearance, ring, std::move(program));
  Process* raw = process.get();
  processes_[pid] = std::move(process);
  machine_->meter().LabelProcess(pid, name);
  if (dedicated) {
    dedicated_.push_back(raw);
    if (!two_layer_) {
      Enqueue(raw);
    }
  } else {
    Enqueue(raw);
  }
  return raw;
}

Process* TrafficController::Find(ProcessId pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void TrafficController::MakeReady(Process* process) {
  if (process->state() == TaskState::kDone) {
    return;
  }
  bool was_blocked = process->state() == TaskState::kBlocked;
  process->set_state(TaskState::kReady);
  process->set_blocked_on(0);
  // The process cannot run before the instant that readied it: a dispatching
  // CPU pulls its local clock up to here first.
  process->set_ready_since(machine_->clock().now());
  // Dedicated processes (two-layer mode) are polled in PickNext; everyone
  // else queues. The in_run_queue flag — not the observed state transition —
  // decides whether to insert, so a spurious double wakeup (or a wakeup
  // racing a requeue) can never double-insert the process.
  bool polled = two_layer_ && IsDedicated(process);
  if (polled || process->in_run_queue()) {
    return;
  }
  if (was_blocked && policy_ == SchedulerPolicy::kMultilevelFeedback) {
    // Interactive promotion: a process a wakeup just readied goes back to
    // the top level with a fresh quantum — the terminal-response path.
    ++promotions_;
    process->set_sched_level(0);
    process->set_quantum_used(0);
  }
  Enqueue(process);
}

Status TrafficController::Wakeup(ChannelId channel, EventMessage message) {
  LockGuard traffic(machine_->locks().Traffic());
  auto waiter = channels_.Wakeup(channel, message);
  if (!waiter.ok()) {
    return waiter.status();
  }
  machine_->Charge(machine_->costs().wakeup, "ipc");
  machine_->meter().Emit(TraceEventKind::kIpcWakeup, "ipc_wakeup", channel);
  if (waiter.value() != kNoProcess) {
    if (Process* process = Find(waiter.value()); process != nullptr) {
      MakeReady(process);
      // A wakeup aimed at a process whose last home is another CPU is
      // delivered there with a connect interrupt, as on the real 6180.
      if (machine_->cpu_count() > 1 && process->state() == TaskState::kReady &&
          process->last_cpu() != Process::kNoCpu &&
          process->last_cpu() != machine_->active_cpu()) {
        machine_->PostConnect(process->last_cpu());
      }
    }
  }
  return Status::kOk;
}

Status TrafficController::RegisterInlineHandler(InterruptLine line, Cycles work,
                                                ChannelId completion_channel) {
  if (line >= machine_->interrupts().line_count()) {
    return Status::kInvalidArgument;
  }
  handlers_[line] = HandlerSpec{true, work, completion_channel};
  return Status::kOk;
}

Status TrafficController::RegisterInterruptProcess(InterruptLine line, ChannelId channel) {
  if (line >= machine_->interrupts().line_count()) {
    return Status::kInvalidArgument;
  }
  if (!channels_.Exists(channel)) {
    return Status::kNoSuchChannel;
  }
  handlers_[line] = HandlerSpec{false, 0, channel};
  return Status::kOk;
}

void TrafficController::RecordInterruptLatency(Cycles asserted_at) {
  interrupt_latency_.Add(static_cast<double>(machine_->clock().now() - asserted_at));
}

void TrafficController::DispatchPendingInterrupts() {
  InterruptEvent ev;
  while (machine_->interrupts().TakePending(&ev)) {
    auto it = handlers_.find(ev.line);
    if (it == handlers_.end()) {
      continue;  // Unregistered line: dropped, as real hardware masks do.
    }
    const HandlerSpec& spec = it->second;
    const CostModel& costs = machine_->costs();
    machine_->meter().Emit(TraceEventKind::kInterrupt, "interrupt", ev.line);
    if (interrupt_strategy_ == InterruptStrategy::kInlineInCurrentProcess || spec.inline_mode) {
      // The handler inhabits whatever process was running: its full body
      // executes now, on the interrupted VP, and the victim pays.
      machine_->Charge(costs.interrupt_entry + spec.work + costs.interrupt_exit,
                       "interrupt_inline");
      if (last_running_ != nullptr) {
        last_running_->accounting().stolen_by_interrupts +=
            costs.interrupt_entry + spec.work + costs.interrupt_exit;
      }
      RecordInterruptLatency(ev.asserted_at);
      if (spec.channel != 0) {
        (void)Wakeup(spec.channel, EventMessage{ev.payload, kNoProcess});
      }
    } else {
      // The interceptor just turns the interrupt into a wakeup; the handler
      // process does the work on its own virtual processor.
      machine_->Charge(costs.interrupt_entry, "interrupt_intercept");
      (void)Wakeup(spec.channel, EventMessage{ev.asserted_at, kNoProcess});
    }
  }
}

uint32_t TrafficController::PickCpu() const {
  uint32_t best = 0;
  for (uint32_t cpu = 1; cpu < machine_->cpu_count(); ++cpu) {
    if (machine_->local_clock(cpu) < machine_->local_clock(best)) {
      best = cpu;
    }
  }
  return best;
}

Process* TrafficController::LastOn(uint32_t cpu) {
  return cpu < last_on_cpu_.size() ? last_on_cpu_[cpu] : nullptr;
}

void TrafficController::SetLastOn(uint32_t cpu, Process* process) {
  if (cpu >= last_on_cpu_.size()) {
    last_on_cpu_.resize(machine_->cpu_count(), nullptr);
  }
  last_on_cpu_[cpu] = process;
}

Process* TrafficController::PickNextFor(uint32_t cpu) {
  // One span over the whole pick (dedicated poll, MLF class/level selection,
  // work stealing): PickMlf/StealWork are not spanned separately so nested
  // same-subsystem totals are not double-counted.
  MX_HOST_SPAN(kScheduler);
  if (two_layer_) {
    // Dedicated virtual processors first: round-robin over ready ones. Any
    // CPU polls them, so a dedicated kernel process never loses its virtual
    // processor to affinity.
    const size_t n = dedicated_.size();
    for (size_t i = 0; i < n; ++i) {
      Process* candidate = dedicated_[(dedicated_cursor_ + i) % n];
      if (candidate->state() == TaskState::kReady) {
        dedicated_cursor_ = (dedicated_cursor_ + i + 1) % n;
        return candidate;
      }
    }
  }
  if (policy_ == SchedulerPolicy::kMultilevelFeedback) {
    return PickMlf(cpu);
  }
  // Drop stale front entries exactly as the uniprocessor scheduler did.
  while (!ready_queue_.empty()) {
    Process* front = ready_queue_.front();
    if ((two_layer_ && IsDedicated(front)) || front->state() != TaskState::kReady) {
      ready_queue_.pop_front();
      front->set_in_run_queue(false);
      continue;
    }
    break;
  }
  if (ready_queue_.empty()) {
    return nullptr;
  }
  // Every CPU takes the queue head, exactly as on the uniprocessor. The 6180's
  // CPUs had no caches, so there is nothing for a process to "warm up" on the
  // CPU it last ran on; reordering the queue for affinity only lets a CPU
  // re-run its own process past older waiters and starve them. Affinity lives
  // where the real system put it instead: a wakeup for a process whose last
  // home is another CPU sends the connect interrupt there (see Wakeup), and
  // the dispatcher charges a process switch only when the CPU actually
  // changes processes.
  Process* candidate = ready_queue_.front();
  ready_queue_.pop_front();
  candidate->set_in_run_queue(false);
  return candidate;
}

void TrafficController::StealWork(uint32_t cpu) {
  // Victim: the CPU with the most queued work (lowest index on ties).
  uint32_t victim = cpu;
  size_t victim_load = 0;
  for (uint32_t other = 0; other < machine_->cpu_count(); ++other) {
    if (other == cpu) {
      continue;
    }
    const size_t load = CpuQueued(other);
    if (load > victim_load) {
      victim = other;
      victim_load = load;
    }
  }
  if (victim == cpu || victim_load == 0) {
    return;
  }
  // Take the deeper half (rounded up): long-running work migrates, the
  // victim keeps its interactive front. Tail-first pops keep the migrated
  // processes behind any work already queued here at the same level.
  size_t want = (victim_load + 1) / 2;
  for (uint32_t k = 0; k < classes_.size() && want > 0; ++k) {
    RunQueue& from = run_queues_[victim][k];
    RunQueue& to = run_queues_[cpu][k];
    for (uint32_t level = kSchedLevels; level-- > 0 && want > 0;) {
      while (want > 0 && !from.level[level].empty()) {
        Process* moved = from.level[level].back();
        from.level[level].pop_back();
        --from.count;
        to.level[level].push_back(moved);
        ++to.count;
        --want;
        ++steals_;
      }
    }
  }
}

Process* TrafficController::PickMlf(uint32_t cpu) {
  if (CpuQueued(cpu) == 0 && machine_->cpu_count() > 1) {
    StealWork(cpu);
  }
  for (;;) {
    // Work class first: among classes with ready work here, the one with the
    // lowest virtual time (charged cycles scaled down by weight) runs. Ties
    // go to the lowest id, so selection is deterministic.
    uint32_t best_class = UINT32_MAX;
    for (uint32_t k = 0; k < classes_.size(); ++k) {
      if (run_queues_[cpu][k].count == 0) {
        continue;
      }
      if (best_class == UINT32_MAX ||
          classes_[k].charged * classes_[best_class].weight <
              classes_[best_class].charged * classes_[k].weight) {
        best_class = k;
      }
    }
    if (best_class == UINT32_MAX) {
      return nullptr;
    }
    RunQueue& rq = run_queues_[cpu][best_class];
    // Level next: shallowest non-empty, except that every kFairnessPeriod-th
    // dispatch serves the deepest instead — demoted work is never starved
    // for more than a bounded number of dispatches.
    const bool fairness_pass = dispatch_seq_ % kFairnessPeriod == kFairnessPeriod - 1;
    uint32_t chosen = UINT32_MAX;
    if (fairness_pass) {
      for (uint32_t level = kSchedLevels; level-- > 0;) {
        if (!rq.level[level].empty()) {
          chosen = level;
          break;
        }
      }
    } else {
      for (uint32_t level = 0; level < kSchedLevels; ++level) {
        if (!rq.level[level].empty()) {
          chosen = level;
          break;
        }
      }
    }
    CHECK_NE(chosen, UINT32_MAX);
    Process* candidate = rq.level[chosen].front();
    rq.level[chosen].pop_front();
    --rq.count;
    candidate->set_in_run_queue(false);
    // Stale entries — destroyed processes or dedicated ones after a layer
    // toggle — are dropped, exactly as the FIFO scheduler drops them.
    if ((two_layer_ && IsDedicated(candidate)) || candidate->state() != TaskState::kReady) {
      continue;
    }
    return candidate;
  }
}

void TrafficController::RecordDispatch(uint32_t cpu, const Process* process) {
  MX_HOST_SPAN(kScheduler);
  ++dispatch_seq_;
  if (trace_limit_ > 0 && dispatch_trace_.size() < trace_limit_) {
    dispatch_trace_.push_back(DispatchRecord{machine_->clock().now(), cpu, process->pid(),
                                             process->sched_level(), process->work_class()});
  }
}

bool TrafficController::RunSlice() {
  // Deliver everything that has already happened, then take interrupts.
  machine_->events().RunUntil(machine_->clock().now());
  DispatchPendingInterrupts();

  const uint32_t cpu = PickCpu();
  machine_->SetActiveCpu(cpu);
  if (machine_->cpu_count() > 1) {
    (void)machine_->TakeConnect(cpu);  // The connect got us here; consume it.
  }

  Process* next = PickNextFor(cpu);
  if (next == nullptr) {
    // Idle: jump to the next external event if there is one. Every CPU was
    // out of work, so all local clocks fast-forward to the event, uncharged —
    // a blocked CPU burns no accounted cycles.
    if (machine_->events().RunOne()) {
      ++idle_jumps_;
      machine_->FastForwardAllCpus(machine_->clock().now());
      DispatchPendingInterrupts();
      return true;
    }
    return false;
  }
  // The wakeup that readied this process happened at global time
  // ready_since(); this CPU cannot have run it earlier than that.
  machine_->FastForwardActiveCpu(next->ready_since());

  const bool switched = next != LastOn(cpu);
  if (switched) {
    ++context_switches_;
    machine_->Charge(machine_->costs().process_switch, "scheduler");
  }
  SetLastOn(cpu, next);
  last_running_ = next;
  RecordDispatch(cpu, next);

  // Install the process's causal context (and {pid, ring} attribution) for
  // the duration of the step, so every span and event the step records is
  // attributed to this process and nests in its own span tree.
  Meter& meter = machine_->meter();
  TraceContext* previous_context = meter.SetContext(&next->trace_context());
  if (switched) {
    meter.Emit(TraceEventKind::kDispatch, "dispatch", next->pid());
  }
  const Cycles busy_before = machine_->busy_cycles(cpu);
  TaskContext ctx(this, next);
  TaskState state = next->program()->Step(ctx);
  meter.SetContext(previous_context);
  // Everything the step charged on this CPU — gate bodies included — counts
  // against the process's quantum and its work class's virtual time.
  const Cycles used = machine_->busy_cycles(cpu) - busy_before;
  WorkClass& work_class = classes_[next->work_class()];
  work_class.charged += used;
  ++work_class.dispatches;
  ++next->accounting().dispatches;
  next->set_last_cpu(cpu);
  next->set_state(state);
  switch (state) {
    case TaskState::kReady: {
      if (!(two_layer_ && IsDedicated(next))) {
        if (policy_ == SchedulerPolicy::kMultilevelFeedback) {
          next->set_quantum_used(next->quantum_used() + used);
          if (next->quantum_used() >= quantum_for_level(next->sched_level())) {
            // Quantum expiry: drop a level (longer quantum, served later) —
            // compute-bound work sinks out of the interactive levels.
            if (next->sched_level() + 1 < kSchedLevels) {
              next->set_sched_level(next->sched_level() + 1);
              ++demotions_;
            }
            next->set_quantum_used(0);
          }
        }
        Enqueue(next);
      }
      break;
    }
    case TaskState::kBlocked: {
      // A wakeup may have raced in during the step: if the channel already
      // has events, the process is still runnable.
      if (next->blocked_on() != 0 && channels_.HasEvents(next->blocked_on())) {
        MakeReady(next);
      }
      break;
    }
    case TaskState::kDone:
      break;
  }
  return true;
}

uint64_t TrafficController::RunUntil(Cycles deadline) {
  uint64_t slices = 0;
  while (machine_->clock().now() < deadline && RunSlice()) {
    ++slices;
  }
  machine_->clock().AdvanceTo(deadline);
  return slices;
}

uint64_t TrafficController::RunUntilQuiescent(uint64_t max_slices) {
  uint64_t slices = 0;
  while (slices < max_slices) {
    bool user_work_left = false;
    for (auto& [pid, process] : processes_) {
      if (!IsDedicated(process.get()) && process->state() != TaskState::kDone) {
        user_work_left = true;
        break;
      }
    }
    if (!user_work_left) {
      break;
    }
    if (!RunSlice()) {
      break;  // Deadlocked or everyone blocked with no pending events.
    }
    ++slices;
  }
  return slices;
}

}  // namespace multics
