// Level-2 processes: full Multics processes with an address space (descriptor
// segment), a known segment table, a principal and MLS clearance, and a
// program. Kernel daemons are processes too — the paper's simplification is
// precisely that page control, interrupt handlers, etc. become ordinary
// asynchronous processes — they just run on dedicated level-1 virtual
// processors.

#ifndef SRC_PROC_PROCESS_H_
#define SRC_PROC_PROCESS_H_

#include <functional>
#include <memory>
#include <string>

#include "src/base/clock.h"
#include "src/fs/acl.h"
#include "src/fs/kst.h"
#include "src/hw/sdw.h"
#include "src/meter/context.h"
#include "src/mls/label.h"
#include "src/proc/ipc.h"

namespace multics {

class TaskContext;

enum class TaskState { kReady, kBlocked, kDone };

// One schedulable program: a cooperative state machine. Step() runs a bounded
// amount of work, charging cycles through the context, and reports whether
// the process is still runnable, blocked on a channel, or finished.
class Task {
 public:
  virtual ~Task() = default;
  virtual TaskState Step(TaskContext& ctx) = 0;
};

// Adapter for simple tasks written as a lambda.
class FnTask : public Task {
 public:
  using Fn = std::function<TaskState(TaskContext&)>;
  explicit FnTask(Fn fn) : fn_(std::move(fn)) {}
  TaskState Step(TaskContext& ctx) override { return fn_(ctx); }

 private:
  Fn fn_;
};

struct ProcessAccounting {
  Cycles cpu_used = 0;          // Charged by the process's own work.
  Cycles stolen_by_interrupts = 0;  // Inline interrupt handling on our VP.
  uint64_t dispatches = 0;
};

class Process {
 public:
  Process(ProcessId pid, std::string name, Principal principal, MlsLabel clearance,
          RingNumber ring, std::unique_ptr<Task> program)
      : pid_(pid),
        name_(std::move(name)),
        principal_(std::move(principal)),
        clearance_(clearance),
        ring_(ring),
        program_(std::move(program)),
        trace_context_(pid, ring) {}

  ProcessId pid() const { return pid_; }
  const std::string& name() const { return name_; }
  const Principal& principal() const { return principal_; }
  const MlsLabel& clearance() const { return clearance_; }
  RingNumber ring() const { return ring_; }
  void set_ring(RingNumber ring) {
    ring_ = ring;
    trace_context_.ring = ring;
  }

  // The process's causal span stack; the traffic controller installs it on
  // the meter while this process runs (see src/meter/context.h).
  TraceContext& trace_context() { return trace_context_; }

  DescriptorSegment& dseg() { return dseg_; }
  KnownSegmentTable& kst() { return kst_; }
  const KnownSegmentTable& kst() const { return kst_; }

  Task* program() const { return program_.get(); }

  TaskState state() const { return state_; }
  void set_state(TaskState state) { state_ = state; }
  ChannelId blocked_on() const { return blocked_on_; }
  void set_blocked_on(ChannelId id) { blocked_on_ = id; }

  ProcessAccounting& accounting() { return accounting_; }
  const ProcessAccounting& accounting() const { return accounting_; }

  // The physical CPU this process last ran on (kNoCpu before its first
  // dispatch). The scheduler uses it for soft affinity, and a cross-CPU
  // wakeup directs a connect interrupt at it.
  static constexpr uint32_t kNoCpu = UINT32_MAX;
  uint32_t last_cpu() const { return last_cpu_; }
  void set_last_cpu(uint32_t cpu) { last_cpu_ = cpu; }

  // Global-clock time this process last became ready. A CPU dispatching the
  // process fast-forwards its local clock here first: a process woken by an
  // event at time T cannot have run before T.
  Cycles ready_since() const { return ready_since_; }
  void set_ready_since(Cycles t) { ready_since_ = t; }

  // --- Scheduling state (owned by the traffic controller) -------------------
  // Work class: which share of the machine this process draws from. Class 0
  // is the default; the traffic controller defines further classes.
  uint32_t work_class() const { return work_class_; }
  void set_work_class(uint32_t k) { work_class_ = k; }
  // Multilevel-feedback level: 0 is the interactive top; deeper levels get
  // longer quanta and run only when shallower ones are empty.
  uint32_t sched_level() const { return sched_level_; }
  void set_sched_level(uint32_t level) { sched_level_ = level; }
  // Cycles consumed against the current level's quantum.
  Cycles quantum_used() const { return quantum_used_; }
  void set_quantum_used(Cycles used) { quantum_used_ = used; }
  // True while this process sits in a run queue. The enqueue path CHECKs the
  // flag, so a blocked→ready transition can never double-insert a process.
  bool in_run_queue() const { return in_run_queue_; }
  void set_in_run_queue(bool in) { in_run_queue_ = in; }

 private:
  ProcessId pid_;
  std::string name_;
  Principal principal_;
  MlsLabel clearance_;
  RingNumber ring_;
  std::unique_ptr<Task> program_;

  DescriptorSegment dseg_;
  KnownSegmentTable kst_;

  TaskState state_ = TaskState::kReady;
  ChannelId blocked_on_ = 0;
  uint32_t last_cpu_ = kNoCpu;
  Cycles ready_since_ = 0;
  uint32_t work_class_ = 0;
  uint32_t sched_level_ = 0;
  Cycles quantum_used_ = 0;
  bool in_run_queue_ = false;
  ProcessAccounting accounting_;
  TraceContext trace_context_;
};

}  // namespace multics

#endif  // SRC_PROC_PROCESS_H_
