// Base-level interprocess communication: event channels and wakeups.
//
// The paper: "The proposed new base-level interprocess communication facility
// has the property that its use can be controlled with the standard memory
// protection mechanisms of the kernel." We model that by associating each
// channel with a segment UID; the kernel's gate layer requires write access
// to that segment before permitting a Wakeup, and read access before a Block
// (see src/core/kernel.h). At this layer the table is pure mechanism.

#ifndef SRC_PROC_IPC_H_
#define SRC_PROC_IPC_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/base/result.h"

namespace multics {

class Meter;

using ChannelId = uint64_t;
using ProcessId = uint64_t;
inline constexpr ProcessId kNoProcess = 0;

struct EventMessage {
  uint64_t data = 0;
  ProcessId sender = kNoProcess;
};

class EventChannelTable {
 public:
  // Optional metering hook (the traffic controller attaches the machine's
  // meter): channel creations, queued wakeups, and receives are counted
  // under "ipc/...".
  void AttachMeter(Meter* meter) { meter_ = meter; }

  // Creates a channel owned by `owner`, guarded by segment `guard_uid`
  // (0 = unguarded, kernel-internal channels).
  ChannelId Create(ProcessId owner, uint64_t guard_uid = 0);
  Status Destroy(ChannelId id);

  bool Exists(ChannelId id) const { return channels_.contains(id); }
  Result<ProcessId> OwnerOf(ChannelId id) const;
  Result<uint64_t> GuardOf(ChannelId id) const;

  // Queues an event. Returns the process (if any) that was blocked waiting
  // and should now be made ready; the scheduler handles that.
  Result<ProcessId> Wakeup(ChannelId id, EventMessage message);

  // Non-blocking receive: pops the oldest queued event if present.
  Result<EventMessage> TryReceive(ChannelId id);
  bool HasEvents(ChannelId id) const;
  Result<uint64_t> QueueLength(ChannelId id) const;

  // Registers/clears the single blocked waiter.
  Status SetWaiter(ChannelId id, ProcessId waiter);
  Status ClearWaiter(ChannelId id);

  uint64_t total_wakeups() const { return total_wakeups_; }

 private:
  struct Channel {
    ProcessId owner = kNoProcess;
    uint64_t guard_uid = 0;
    std::deque<EventMessage> queue;
    ProcessId waiter = kNoProcess;
  };

  Meter* meter_ = nullptr;
  std::unordered_map<ChannelId, Channel> channels_;
  ChannelId next_id_ = 1;
  uint64_t total_wakeups_ = 0;
};

}  // namespace multics

#endif  // SRC_PROC_IPC_H_
