// The two-layer process implementation and its scheduler.
//
// Layer 1 multiplexes the machine's physical processors (one to six simulated
// CPUs) into a fixed number of virtual processors. "Because the number of
// virtual processors is fixed, this first layer need not depend on the
// facilities for managing the virtual memory. Several of the virtual
// processors are permanently assigned to implement processes for the
// dedicated use of other kernel mechanisms." Layer 2 multiplexes the
// remaining virtual processors among any number of full Multics processes.
//
// On a multiprocessor the dispatcher always runs the CPU whose local clock is
// furthest behind, giving a deterministic round-robin interleaving on the sim
// clock. Shared processes have soft affinity for the CPU they last ran on;
// dedicated kernel processes keep their virtual processors and are polled
// from every CPU. A wakeup that readies a process last run on another CPU
// posts an interprocessor "connect" interrupt at it. A CPU with nothing to
// run fast-forwards to the next event without charging cycles.
//
// The controller also implements the paper's two interrupt-handling designs:
// inline (the handler inhabits whatever process was running — stealing its
// time) and dedicated processes (the interceptor "will simply turn each
// interrupt into a wakeup of the corresponding process").

#ifndef SRC_PROC_TRAFFIC_CONTROLLER_H_
#define SRC_PROC_TRAFFIC_CONTROLLER_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/stats.h"
#include "src/hw/machine.h"
#include "src/proc/process.h"

namespace multics {

class TrafficController;

// Execution context handed to a Task::Step. Charging, blocking, and wakeups
// go through here so the scheduler can do the accounting.
class TaskContext {
 public:
  TaskContext(TrafficController* controller, Process* self)
      : controller_(controller), self_(self) {}

  Machine& machine();
  Process& self() { return *self_; }
  TrafficController& controller() { return *controller_; }

  // CPU time consumed by this step.
  void Charge(Cycles n, const char* category = "task_cpu");

  // Attempts to receive from `channel`. On success the message is available
  // via last_message() and the task continues. On failure the task is
  // registered as the channel's waiter and must return TaskState::kBlocked.
  bool Await(ChannelId channel);
  const EventMessage& last_message() const { return last_message_; }

  // Sends a wakeup (readying any waiter).
  Status Wakeup(ChannelId channel, uint64_t data);

 private:
  TrafficController* controller_;
  Process* self_;
  EventMessage last_message_;
};

enum class InterruptStrategy {
  kInlineInCurrentProcess,  // Pre-6180-redesign: handler steals the VP.
  kDedicatedProcesses,      // Paper's design: interrupt becomes a wakeup.
};

class TrafficController {
 public:
  // `virtual_processors` is the fixed level-1 pool; dedicated processes each
  // occupy one permanently.
  TrafficController(Machine* machine, uint32_t virtual_processors);

  // Creates a process. Dedicated processes get their own level-1 virtual
  // processor and scheduling priority over the shared pool.
  Result<Process*> CreateProcess(const std::string& name, const Principal& principal,
                                 const MlsLabel& clearance, RingNumber ring,
                                 std::unique_ptr<Task> program, bool dedicated = false);

  Process* Find(ProcessId pid);
  // Whole-population sweep, for the static certifier and shutdown paths.
  template <typename Fn>
  void ForEachProcess(Fn&& fn) {
    for (auto& [pid, process] : processes_) {
      fn(*process);
    }
  }
  uint32_t process_count() const { return static_cast<uint32_t>(processes_.size()); }
  uint32_t dedicated_count() const { return static_cast<uint32_t>(dedicated_.size()); }
  uint32_t vp_count() const { return vp_count_; }

  // When disabled, dedicated processes lose their reserved virtual
  // processors and compete FIFO with everyone else — the single-layer
  // structure experiment E11 compares against.
  void set_two_layer(bool enabled);
  bool two_layer() const { return two_layer_; }

  EventChannelTable& channels() { return channels_; }

  // IPC entry: queue an event and ready the waiter, charging wakeup cost.
  Status Wakeup(ChannelId channel, EventMessage message);

  // Interrupt handling.
  void SetInterruptStrategy(InterruptStrategy strategy) { interrupt_strategy_ = strategy; }
  InterruptStrategy interrupt_strategy() const { return interrupt_strategy_; }
  // Inline mode: handler body runs on the interrupted VP for `work` cycles,
  // then optionally wakes `completion_channel` (0 = none).
  Status RegisterInlineHandler(InterruptLine line, Cycles work, ChannelId completion_channel = 0);
  // Dedicated mode: the interceptor wakes `channel`; the handler process
  // (blocked on it) does the work itself.
  Status RegisterInterruptProcess(InterruptLine line, ChannelId channel);

  // Scheduling. RunSlice executes one dispatch (or one idle event) and
  // returns false only when nothing can ever run again.
  bool RunSlice();
  uint64_t RunUntil(Cycles deadline);
  // Runs until every non-dedicated process is done (or `max_slices` hit).
  uint64_t RunUntilQuiescent(uint64_t max_slices = 10'000'000);

  Machine* machine() const { return machine_; }

  // Metrics.
  Distribution& interrupt_latency() { return interrupt_latency_; }
  uint64_t context_switches() const { return context_switches_; }
  uint64_t idle_jumps() const { return idle_jumps_; }

  // Used by TaskContext.
  void RecordInterruptLatency(Cycles asserted_at);

 private:
  friend class TaskContext;

  struct HandlerSpec {
    bool inline_mode = false;
    Cycles work = 0;
    ChannelId channel = 0;  // Completion (inline) or handler (dedicated) channel.
  };

  void DispatchPendingInterrupts();
  // The physical CPU to dispatch on: the one whose local clock is furthest
  // behind (lowest index wins ties), so CPUs interleave deterministically.
  uint32_t PickCpu() const;
  Process* PickNextFor(uint32_t cpu);
  void MakeReady(Process* process);
  bool IsDedicated(const Process* process) const;
  Process* LastOn(uint32_t cpu);
  void SetLastOn(uint32_t cpu, Process* process);

  Machine* machine_;
  uint32_t vp_count_;
  bool two_layer_ = true;

  EventChannelTable channels_;
  std::unordered_map<ProcessId, std::unique_ptr<Process>> processes_;
  std::vector<Process*> dedicated_;
  std::deque<Process*> ready_queue_;  // Shared (level-2) ready processes.
  size_t dedicated_cursor_ = 0;

  InterruptStrategy interrupt_strategy_ = InterruptStrategy::kDedicatedProcesses;
  std::unordered_map<InterruptLine, HandlerSpec> handlers_;

  Process* last_running_ = nullptr;             // Most recent dispatch on any CPU.
  std::vector<Process*> last_on_cpu_;           // Per-CPU, for switch accounting.
  ProcessId next_pid_ = 1;

  Distribution interrupt_latency_;
  uint64_t context_switches_ = 0;
  uint64_t idle_jumps_ = 0;
};

}  // namespace multics

#endif  // SRC_PROC_TRAFFIC_CONTROLLER_H_
