// The two-layer process implementation and its scheduler.
//
// Layer 1 multiplexes the machine's physical processors (one to six simulated
// CPUs) into a fixed number of virtual processors. "Because the number of
// virtual processors is fixed, this first layer need not depend on the
// facilities for managing the virtual memory. Several of the virtual
// processors are permanently assigned to implement processes for the
// dedicated use of other kernel mechanisms." Layer 2 multiplexes the
// remaining virtual processors among any number of full Multics processes.
//
// Layer-2 dispatch runs one of two policies:
//
//   * kFifo — the original strict-FIFO shared ready queue, kept as the
//     baseline the scheduler benches compare against;
//   * kMultilevelFeedback (default) — a Multics-style work-class /
//     multilevel-feedback scheduler. Each process belongs to a work class
//     holding a weighted share of the machine; classes with ready work are
//     served lowest-virtual-time first (virtual time = cycles charged divided
//     by weight). Within a class each CPU keeps its own run queue of
//     kSchedLevels feedback levels: a process that exhausts its level's
//     quantum is demoted to a deeper level with a doubled quantum, and a
//     blocked process that a wakeup readies is promoted back to level 0 —
//     the interactive response path. Every kFairnessPeriod-th dispatch on a
//     CPU serves the deepest non-empty level instead of the shallowest,
//     bounding starvation. A CPU whose queues are empty steals the deeper
//     half of the most-loaded CPU's queue (lowest index on ties). All of it
//     runs on the simulated clock, so dispatch is byte-identical across runs
//     at a fixed seed and CPU count.
//
// On a multiprocessor the dispatcher always runs the CPU whose local clock is
// furthest behind, giving a deterministic round-robin interleaving on the sim
// clock. Shared processes have soft affinity for the CPU they last ran on;
// dedicated kernel processes keep their virtual processors and are polled
// from every CPU. A wakeup that readies a process last run on another CPU
// posts an interprocessor "connect" interrupt at it. A CPU with nothing to
// run fast-forwards to the next event without charging cycles.
//
// The controller also implements the paper's two interrupt-handling designs:
// inline (the handler inhabits whatever process was running — stealing its
// time) and dedicated processes (the interceptor "will simply turn each
// interrupt into a wakeup of the corresponding process").

#ifndef SRC_PROC_TRAFFIC_CONTROLLER_H_
#define SRC_PROC_TRAFFIC_CONTROLLER_H_

#include <array>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/stats.h"
#include "src/hw/machine.h"
#include "src/proc/process.h"

namespace multics {

class TrafficController;

// Execution context handed to a Task::Step. Charging, blocking, and wakeups
// go through here so the scheduler can do the accounting.
class TaskContext {
 public:
  TaskContext(TrafficController* controller, Process* self)
      : controller_(controller), self_(self) {}

  Machine& machine();
  Process& self() { return *self_; }
  TrafficController& controller() { return *controller_; }

  // CPU time consumed by this step.
  void Charge(Cycles n, const char* category = "task_cpu");

  // Attempts to receive from `channel`. On success the message is available
  // via last_message() and the task continues. On failure the task is
  // registered as the channel's waiter and must return TaskState::kBlocked.
  bool Await(ChannelId channel);
  const EventMessage& last_message() const { return last_message_; }

  // Sends a wakeup (readying any waiter).
  Status Wakeup(ChannelId channel, uint64_t data);

 private:
  TrafficController* controller_;
  Process* self_;
  EventMessage last_message_;
};

enum class InterruptStrategy {
  kInlineInCurrentProcess,  // Pre-6180-redesign: handler steals the VP.
  kDedicatedProcesses,      // Paper's design: interrupt becomes a wakeup.
};

enum class SchedulerPolicy {
  kFifo,                // One shared strict-FIFO ready queue (the old design).
  kMultilevelFeedback,  // Work classes + per-CPU multilevel-feedback queues.
};

// A weighted share of the machine. Processes are members of exactly one work
// class; among classes with ready work the scheduler serves the one with the
// lowest virtual time (charged cycles scaled down by weight).
struct WorkClass {
  std::string name;
  uint32_t weight = 1;
  Cycles charged = 0;       // Total cycles charged by member dispatches.
  uint64_t dispatches = 0;  // Member dispatch count.
};

// One dispatch decision, for determinism tests and trace hashing.
struct DispatchRecord {
  Cycles at = 0;       // Global clock when the dispatch was chosen.
  uint32_t cpu = 0;    // Physical CPU that ran the slice.
  ProcessId pid = 0;   // Process dispatched.
  uint32_t level = 0;  // Feedback level it was taken from.
  uint32_t work_class = 0;
};

class TrafficController {
 public:
  // `virtual_processors` is the fixed level-1 pool; dedicated processes each
  // occupy one permanently.
  TrafficController(Machine* machine, uint32_t virtual_processors);

  // Creates a process. Dedicated processes get their own level-1 virtual
  // processor and scheduling priority over the shared pool.
  Result<Process*> CreateProcess(const std::string& name, const Principal& principal,
                                 const MlsLabel& clearance, RingNumber ring,
                                 std::unique_ptr<Task> program, bool dedicated = false);

  Process* Find(ProcessId pid);
  // Whole-population sweep, for the static certifier and shutdown paths.
  template <typename Fn>
  void ForEachProcess(Fn&& fn) {
    for (auto& [pid, process] : processes_) {
      fn(*process);
    }
  }
  uint32_t process_count() const { return static_cast<uint32_t>(processes_.size()); }
  uint32_t dedicated_count() const { return static_cast<uint32_t>(dedicated_.size()); }
  uint32_t vp_count() const { return vp_count_; }

  // When disabled, dedicated processes lose their reserved virtual
  // processors and compete FIFO with everyone else — the single-layer
  // structure experiment E11 compares against.
  void set_two_layer(bool enabled);
  bool two_layer() const { return two_layer_; }

  EventChannelTable& channels() { return channels_; }

  // IPC entry: queue an event and ready the waiter, charging wakeup cost.
  Status Wakeup(ChannelId channel, EventMessage message);

  // Interrupt handling.
  void SetInterruptStrategy(InterruptStrategy strategy) { interrupt_strategy_ = strategy; }
  InterruptStrategy interrupt_strategy() const { return interrupt_strategy_; }
  // Inline mode: handler body runs on the interrupted VP for `work` cycles,
  // then optionally wakes `completion_channel` (0 = none).
  Status RegisterInlineHandler(InterruptLine line, Cycles work, ChannelId completion_channel = 0);
  // Dedicated mode: the interceptor wakes `channel`; the handler process
  // (blocked on it) does the work itself.
  Status RegisterInterruptProcess(InterruptLine line, ChannelId channel);

  // Scheduling. RunSlice executes one dispatch (or one idle event) and
  // returns false only when nothing can ever run again.
  bool RunSlice();
  uint64_t RunUntil(Cycles deadline);
  // Runs until every non-dedicated process is done (or `max_slices` hit).
  uint64_t RunUntilQuiescent(uint64_t max_slices = 10'000'000);

  Machine* machine() const { return machine_; }

  // --- Scheduler policy and work classes ------------------------------------
  static constexpr uint32_t kSchedLevels = 4;
  static constexpr uint32_t kFairnessPeriod = 8;

  // Switching policy migrates any queued processes deterministically, so it
  // is legal between slices (benches flip it right after boot).
  void SetSchedulerPolicy(SchedulerPolicy policy);
  SchedulerPolicy scheduler_policy() const { return policy_; }

  // Level-0 quantum; level L gets base << L. Must be positive.
  void set_base_quantum(Cycles q) { base_quantum_ = q; }
  Cycles quantum_for_level(uint32_t level) const { return base_quantum_ << level; }

  // Defines a new work class and returns its id. Class 0 ("system", weight 4)
  // always exists and is every process's default.
  uint32_t DefineWorkClass(const std::string& name, uint32_t weight);
  uint32_t work_class_count() const { return static_cast<uint32_t>(classes_.size()); }
  const WorkClass& work_class_info(uint32_t id) const { return classes_.at(id); }
  // Moves a process to `work_class`, re-queueing it if it is currently ready.
  Status AssignWorkClass(Process* process, uint32_t work_class);

  // Dispatch trace for determinism tests: records the first `limit` dispatch
  // decisions. Passing 0 disables tracing.
  void EnableDispatchTrace(size_t limit);
  const std::vector<DispatchRecord>& dispatch_trace() const { return dispatch_trace_; }

  // Metrics.
  // Ready processes queued at `cpu` across all work classes and feedback
  // levels (kFifo keeps one shared queue, so per-CPU depths are zero there).
  // mx_top renders these as the per-CPU run-queue depth column.
  size_t CpuQueued(uint32_t cpu) const;
  // Depth of the shared kFifo ready queue (unused by the MLF policy).
  size_t SharedReadyQueued() const { return ready_queue_.size(); }
  Distribution& interrupt_latency() { return interrupt_latency_; }
  uint64_t context_switches() const { return context_switches_; }
  uint64_t idle_jumps() const { return idle_jumps_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t demotions() const { return demotions_; }
  uint64_t steals() const { return steals_; }

  // Used by TaskContext.
  void RecordInterruptLatency(Cycles asserted_at);

 private:
  friend class TaskContext;

  struct HandlerSpec {
    bool inline_mode = false;
    Cycles work = 0;
    ChannelId channel = 0;  // Completion (inline) or handler (dedicated) channel.
  };

  void DispatchPendingInterrupts();
  // The physical CPU to dispatch on: the one whose local clock is furthest
  // behind (lowest index wins ties), so CPUs interleave deterministically.
  uint32_t PickCpu() const;
  Process* PickNextFor(uint32_t cpu);
  void MakeReady(Process* process);
  bool IsDedicated(const Process* process) const;
  Process* LastOn(uint32_t cpu);
  void SetLastOn(uint32_t cpu, Process* process);

  // Per-CPU per-class multilevel run queue.
  struct RunQueue {
    std::array<std::deque<Process*>, kSchedLevels> level;
    size_t count = 0;  // Total queued across levels.
  };

  // Shared enqueue path for both policies; CHECKs !in_run_queue().
  void Enqueue(Process* process);
  // The CPU a not-yet-placed process should queue on: its last CPU when
  // valid, else round-robin over the machine.
  uint32_t HomeCpu(Process* process);
  // Moves the deeper half of the most-loaded other CPU's queue to `cpu`.
  void StealWork(uint32_t cpu);
  // Removes a process from whatever MLF queue holds it (linear; rare).
  void RemoveFromQueues(Process* process);
  Process* PickMlf(uint32_t cpu);
  void RecordDispatch(uint32_t cpu, const Process* process);

  Machine* machine_;
  uint32_t vp_count_;
  bool two_layer_ = true;

  EventChannelTable channels_;
  std::unordered_map<ProcessId, std::unique_ptr<Process>> processes_;
  std::vector<Process*> dedicated_;
  std::deque<Process*> ready_queue_;  // Shared (level-2) ready processes (kFifo).
  size_t dedicated_cursor_ = 0;

  SchedulerPolicy policy_ = SchedulerPolicy::kMultilevelFeedback;
  Cycles base_quantum_ = 4000;
  std::vector<WorkClass> classes_;
  std::vector<std::vector<RunQueue>> run_queues_;  // [cpu][work_class].
  uint32_t next_home_cpu_ = 0;
  uint64_t dispatch_seq_ = 0;

  size_t trace_limit_ = 0;
  std::vector<DispatchRecord> dispatch_trace_;

  InterruptStrategy interrupt_strategy_ = InterruptStrategy::kDedicatedProcesses;
  std::unordered_map<InterruptLine, HandlerSpec> handlers_;

  Process* last_running_ = nullptr;             // Most recent dispatch on any CPU.
  std::vector<Process*> last_on_cpu_;           // Per-CPU, for switch accounting.
  ProcessId next_pid_ = 1;

  Distribution interrupt_latency_;
  uint64_t context_switches_ = 0;
  uint64_t idle_jumps_ = 0;
  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  uint64_t steals_ = 0;
};

}  // namespace multics

#endif  // SRC_PROC_TRAFFIC_CONTROLLER_H_
