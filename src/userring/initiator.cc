#include "src/userring/initiator.h"

#include "src/fs/pathname.h"

namespace multics {
namespace {

constexpr int kMaxLinkDepth = 8;

// User-ring CPU cost of processing one pathname component.
constexpr Cycles kComponentCycles = 80;

}  // namespace

Result<SegNo> UserInitiator::InitiatePath(const std::string& path) {
  return Walk(path, kMaxLinkDepth);
}

Result<SegNo> UserInitiator::InitiateDirPath(const std::string& path) {
  return Walk(path, kMaxLinkDepth);
}

Result<SegNo> UserInitiator::Walk(const std::string& path_text, int depth) {
  if (depth <= 0) {
    return Status::kLinkageFault;
  }
  MX_ASSIGN_OR_RETURN(Path path, Path::Parse(path_text));
  MX_ASSIGN_OR_RETURN(SegNo current, kernel_->RootDir(*process_));
  if (path.IsRoot()) {
    return current;
  }
  for (size_t i = 0; i < path.components.size(); ++i) {
    kernel_->machine().Charge(kComponentCycles, "user_ring_path_walk");
    ++components_walked_;
    auto result = kernel_->Initiate(*process_, current, path.components[i]);
    // The intermediate directory handle is no longer needed; terminating it
    // keeps the KST from silting up with every directory ever walked.
    if (i > 0) {
      (void)kernel_->Terminate(*process_, current);
    }
    if (!result.ok()) {
      return result.status();
    }
    if (result->is_link) {
      // Splice the remaining components onto the link target and restart —
      // in the user ring, with the user's own cycles.
      ++links_chased_;
      std::string spliced = result->link_target;
      for (size_t j = i + 1; j < path.components.size(); ++j) {
        spliced += ">" + path.components[j];
      }
      return Walk(spliced, depth - 1);
    }
    current = result->segno;
  }
  return current;
}

}  // namespace multics
