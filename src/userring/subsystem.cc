#include "src/userring/subsystem.h"

namespace multics {

Result<Subsystem> SubsystemBuilder::Create(SegNo dir_segno, const std::string& name,
                                           RingNumber inner, RingNumber callers,
                                           uint32_t entries) {
  if (inner < owner_->ring() || callers < inner || entries == 0) {
    return Status::kInvalidArgument;
  }
  Subsystem subsystem;
  subsystem.name = name;
  subsystem.inner = inner;
  subsystem.entries = entries;

  // The gate segment: executable from the execute bracket, callable through
  // gates from rings (inner, callers].
  SegmentAttributes gate_attrs;
  gate_attrs.acl.Set(AclEntry{"*", "*", "*", kModeRead | kModeExecute});
  gate_attrs.acl.Set(AclEntry{owner_->principal().person, owner_->principal().project, "*",
                              kModeRead | kModeWrite | kModeExecute});
  gate_attrs.brackets = RingBrackets{inner, inner, callers};
  gate_attrs.gate = true;
  gate_attrs.gate_entries = entries;
  MX_ASSIGN_OR_RETURN(subsystem.gate_uid,
                      kernel_->FsCreateSegment(*owner_, dir_segno, name + "_gate", gate_attrs));

  // The private data segment: no access outside ring <= inner, whatever the
  // ACL says.
  SegmentAttributes data_attrs;
  data_attrs.acl.Set(AclEntry{owner_->principal().person, owner_->principal().project, "*",
                              kModeRead | kModeWrite});
  data_attrs.brackets = RingBrackets{inner, inner, inner};
  MX_ASSIGN_OR_RETURN(subsystem.data_uid,
                      kernel_->FsCreateSegment(*owner_, dir_segno, name + "_data", data_attrs));

  // Initiate both and give them a page of storage.
  MX_ASSIGN_OR_RETURN(InitiateResult gate_init,
                      kernel_->Initiate(*owner_, dir_segno, name + "_gate"));
  subsystem.gate_segno = gate_init.segno;
  MX_RETURN_IF_ERROR(kernel_->SegSetLength(*owner_, subsystem.gate_segno, 1));
  MX_ASSIGN_OR_RETURN(InitiateResult data_init,
                      kernel_->Initiate(*owner_, dir_segno, name + "_data"));
  subsystem.data_segno = data_init.segno;
  MX_RETURN_IF_ERROR(kernel_->SegSetLength(*owner_, subsystem.data_segno, 1));
  return subsystem;
}

Result<RingNumber> SubsystemBuilder::Enter(const Subsystem& subsystem, WordOffset entry) {
  if (entry >= subsystem.entries) {
    return Status::kNotAGate;
  }
  MX_RETURN_IF_ERROR(kernel_->cpu().Call(subsystem.gate_segno, entry));
  return kernel_->cpu().ring();
}

Status SubsystemBuilder::Exit() { return kernel_->cpu().Return(); }

}  // namespace multics
