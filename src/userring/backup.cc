#include "src/userring/backup.h"

namespace multics {

size_t DumpArchive::ApproxBytes() const {
  size_t bytes = 0;
  for (const DumpRecord& record : records) {
    bytes += record.path.size() + 96 + record.words.size() * 12;
  }
  return bytes;
}

Status BackupDaemon::DumpDirectory(Uid dir_uid, const std::string& path, bool incremental,
                                   DumpArchive* archive) {
  auto entries = kernel_->hierarchy().List(dir_uid);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const DirEntry& entry : entries.value()) {
    const std::string child_path = (path == ">" ? ">" : path + ">") + entry.name;
    if (entry.is_link) {
      DumpRecord record;
      record.path = child_path;
      record.is_link = true;
      record.link_target = entry.link_target;
      archive->records.push_back(std::move(record));
      continue;
    }
    auto branch = kernel_->store().Get(entry.uid);
    if (!branch.ok()) {
      continue;  // The salvager's problem, not ours.
    }
    Branch* b = branch.value();
    const bool fresh = b->date_modified >= last_dump_ || b->date_created >= last_dump_;
    if (b->is_directory || !incremental || fresh) {
      DumpRecord record;
      record.path = child_path;
      record.is_directory = b->is_directory;
      record.attrs.max_pages = b->max_pages;
      record.attrs.acl = b->acl;
      record.attrs.label = b->label;
      record.attrs.brackets = b->brackets;
      record.attrs.gate = b->gate;
      record.attrs.gate_entries = b->gate_entries;
      record.attrs.author = b->author;
      record.quota_pages = b->quota_pages;
      record.date_modified = b->date_modified;
      if (!b->is_directory && (!incremental || fresh)) {
        ActiveSegment* seg = kernel_->store().ast()->Find(entry.uid);
        record.pages = seg != nullptr ? seg->pages : b->pages;
        for (WordOffset offset = 0; offset < record.pages * kPageWords; ++offset) {
          auto word = kernel_->DumpReadWord(entry.uid, offset);
          if (word.ok() && word.value() != 0) {
            record.words.emplace_back(offset, word.value());
          }
        }
        ++segments_dumped_;
      }
      archive->records.push_back(std::move(record));
    }
    if (b->is_directory) {
      MX_RETURN_IF_ERROR(DumpDirectory(entry.uid, child_path, incremental, archive));
    }
  }
  return Status::kOk;
}

Result<DumpArchive> BackupDaemon::Dump(bool incremental) {
  DumpArchive archive;
  archive.incremental = incremental;
  archive.taken_at = kernel_->machine().clock().now();
  MX_RETURN_IF_ERROR(DumpDirectory(kernel_->hierarchy().root(), ">", incremental, &archive));
  last_dump_ = archive.taken_at;
  // A dump costs real time: reading is charged by the paging machinery, and
  // writing the tape (or network vault) is charged here per record.
  kernel_->machine().Charge(archive.records.size() * 50, "backup_io");
  return archive;
}

Status BackupDaemon::WriteContents(Uid uid, const DumpRecord& record) {
  if (record.pages > 0) {
    MX_RETURN_IF_ERROR(kernel_->store().SetLength(uid, record.pages));
  }
  for (const auto& [offset, word] : record.words) {
    MX_ASSIGN_OR_RETURN(ActiveSegment * seg, kernel_->store().Activate(uid));
    if (PageOf(offset) >= seg->pages) {
      return Status::kOutOfRange;
    }
    MX_RETURN_IF_ERROR(
        kernel_->page_control().EnsureResident(seg, PageOf(offset), AccessMode::kWrite));
    PageTableEntry& pte = seg->page_table.entries[PageOf(offset)];
    pte.modified = true;
    kernel_->machine().core().WriteWord(pte.frame, PageOffsetOf(offset), word);
  }
  return Status::kOk;
}

Status BackupDaemon::RestoreRecord(const DumpRecord& record, bool overwrite_data,
                                   bool* created) {
  *created = false;
  Hierarchy& hierarchy = kernel_->hierarchy();
  auto path = Path::Parse(record.path);
  if (!path.ok()) {
    return path.status();
  }
  auto parent = hierarchy.ResolvePath(path->Parent());
  if (!parent.ok()) {
    return Status::kNoSuchDirectory;  // Parents restore first (pre-order).
  }
  auto existing = hierarchy.Lookup(parent.value(), path->Leaf());
  if (existing.ok()) {
    if (!record.is_link && !record.is_directory && overwrite_data) {
      MX_RETURN_IF_ERROR(WriteContents(existing->uid, record));
      *created = true;
    }
    return Status::kOk;
  }
  if (record.is_link) {
    MX_RETURN_IF_ERROR(hierarchy.CreateLink(parent.value(), path->Leaf(), record.link_target));
    *created = true;
    return Status::kOk;
  }
  if (record.is_directory) {
    MX_ASSIGN_OR_RETURN(Uid uid, hierarchy.CreateDirectory(parent.value(), path->Leaf(),
                                                           record.attrs, record.quota_pages));
    (void)uid;
    *created = true;
    return Status::kOk;
  }
  MX_ASSIGN_OR_RETURN(Uid uid,
                      hierarchy.CreateSegment(parent.value(), path->Leaf(), record.attrs));
  MX_RETURN_IF_ERROR(WriteContents(uid, record));
  *created = true;
  return Status::kOk;
}

Result<uint32_t> BackupDaemon::Restore(const DumpArchive& archive, bool overwrite_data) {
  uint32_t restored = 0;
  for (const DumpRecord& record : archive.records) {
    bool created = false;
    Status status = RestoreRecord(record, overwrite_data, &created);
    if (status != Status::kOk) {
      return status;
    }
    if (created) {
      ++restored;
    }
  }
  kernel_->machine().Charge(archive.records.size() * 50, "backup_io");
  return restored;
}

Status BackupDaemon::RetrieveSegment(const DumpArchive& archive, const std::string& path) {
  for (const DumpRecord& record : archive.records) {
    if (record.path != path || record.is_directory || record.is_link) {
      continue;
    }
    bool created = false;
    return RestoreRecord(record, /*overwrite_data=*/true, &created);
  }
  return Status::kNotFound;
}

}  // namespace multics
