// The answering service, de-privileged.
//
// Legacy Multics authenticated users inside the supervisor (the `login`
// gate, a "large collection of privileged, protected code"). The paper's
// fourth removal project exploits "a recently-realized equivalence between
// the mechanics of entering a protected subsystem and the mechanics of
// creating a new process in response to a user's log in" to make the
// authenticator ordinary non-privileged code.
//
// This answering service runs as a ring-1 *process* (outside the security
// kernel). Its password registry is an ordinary segment protected by an
// ordinary ACL naming only the service's principal — the kernel contributes
// nothing but the mechanisms it already has. Login is then just: the service
// verifies the password against its own segment and enters the user's
// "subsystem" by creating a process for the authenticated principal.

#ifndef SRC_USERRING_ANSWERING_SERVICE_H_
#define SRC_USERRING_ANSWERING_SERVICE_H_

#include <memory>
#include <string>

#include "src/core/kernel.h"

namespace multics {

class AnsweringService {
 public:
  // Builds the service at system-initialization time: creates the service
  // process (ring 1) and its ACL-protected password segment under the
  // directory handle `dir_segno` of the *service's own* address space root.
  static Result<std::unique_ptr<AnsweringService>> Create(Kernel* kernel);

  // Records a user (writes a record into the password segment).
  Status RegisterUser(const std::string& person, const std::string& project,
                      const std::string& password, const MlsLabel& max_clearance);

  // Authenticates and creates the user's process at `requested` clearance.
  // `program` is the user's initial procedure — the "subsystem" the login
  // enters; when omitted the process is created with an empty program.
  Result<Process*> Login(const std::string& person, const std::string& project,
                         const std::string& password, const MlsLabel& requested,
                         std::unique_ptr<Task> program = nullptr);

  Process* service_process() const { return service_; }
  SegNo password_segno() const { return pwd_segno_; }
  uint64_t failed_logins() const { return failed_logins_; }
  uint64_t successful_logins() const { return successful_logins_; }

 private:
  AnsweringService(Kernel* kernel, Process* service, SegNo pwd_segno)
      : kernel_(kernel), service_(service), pwd_segno_(pwd_segno) {}

  // Password-segment record: [name_hash, password_hash, label, level] per user.
  static constexpr uint32_t kRecordWords = 4;

  Kernel* kernel_;
  Process* service_;
  SegNo pwd_segno_;
  uint32_t records_ = 0;
  uint64_t failed_logins_ = 0;
  uint64_t successful_logins_ = 0;
};

// FNV-1a, used for the simulated one-way password images.
uint64_t Fnv1a(const std::string& text);

}  // namespace multics

#endif  // SRC_USERRING_ANSWERING_SERVICE_H_
