// The backup daemon: complete and incremental dumps of the hierarchy, and
// retrieval. The paper counts backup among the *internal* I/O functions that
// stay with the kernel's storage machinery even after external I/O is
// consolidated onto the network — but the daemon itself is a trusted
// process, not kernel code: it runs with dumper authority (ring 1) and uses
// the kernel's DumpReadWord path, never private interfaces.

#ifndef SRC_USERRING_BACKUP_H_
#define SRC_USERRING_BACKUP_H_

#include <string>
#include <vector>

#include "src/core/kernel.h"

namespace multics {

struct DumpRecord {
  std::string path;
  bool is_directory = false;
  bool is_link = false;
  std::string link_target;
  SegmentAttributes attrs;
  uint32_t quota_pages = 0;
  uint32_t pages = 0;
  Cycles date_modified = 0;
  std::vector<std::pair<WordOffset, Word>> words;  // Non-zero words only.
};

struct DumpArchive {
  Cycles taken_at = 0;
  bool incremental = false;
  std::vector<DumpRecord> records;

  size_t ApproxBytes() const;
};

class BackupDaemon {
 public:
  explicit BackupDaemon(Kernel* kernel) : kernel_(kernel) {}

  // Walks the hierarchy and dumps every branch (complete) or every branch
  // modified since the previous dump (incremental). Advances the dump clock.
  Result<DumpArchive> Dump(bool incremental);

  // Recreates every record missing from the hierarchy (after damage or on a
  // fresh system); existing entries are left alone unless `overwrite_data`
  // is set, in which case segment contents are restored too.
  Result<uint32_t> Restore(const DumpArchive& archive, bool overwrite_data);

  // Retrieves one segment's dumped contents into the live hierarchy.
  Status RetrieveSegment(const DumpArchive& archive, const std::string& path);

  Cycles last_dump_time() const { return last_dump_; }
  uint64_t segments_dumped() const { return segments_dumped_; }

 private:
  Status DumpDirectory(Uid dir_uid, const std::string& path, bool incremental,
                       DumpArchive* archive);
  Status RestoreRecord(const DumpRecord& record, bool overwrite_data, bool* created);
  Status WriteContents(Uid uid, const DumpRecord& record);

  Kernel* kernel_;
  Cycles last_dump_ = 0;
  uint64_t segments_dumped_ = 0;
};

}  // namespace multics

#endif  // SRC_USERRING_BACKUP_H_
