#include "src/userring/rnm.h"

#include "src/fs/pathname.h"

namespace multics {

Status ReferenceNameManager::Bind(const std::string& name, SegNo segno) {
  if (name.empty() || name.size() > kMaxNameLength) {
    return Status::kInvalidArgument;
  }
  if (names_.contains(name)) {
    return Status::kReferenceNameBound;
  }
  names_[name] = segno;
  return Status::kOk;
}

Result<SegNo> ReferenceNameManager::Lookup(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::kNoSuchReferenceName;
  }
  return it->second;
}

Status ReferenceNameManager::Unbind(const std::string& name) {
  return names_.erase(name) > 0 ? Status::kOk : Status::kNoSuchReferenceName;
}

std::vector<std::string> ReferenceNameManager::Names() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [name, segno] : names_) {
    out.push_back(name);
  }
  return out;
}

size_t ReferenceNameManager::UserRingStateBytes() const {
  size_t bytes = 0;
  for (const auto& [name, segno] : names_) {
    bytes += name.size() + sizeof(SegNo) + 16;
  }
  return bytes;
}

Status SearchRules::Set(const std::vector<std::string>& rules) {
  for (const std::string& rule : rules) {
    if (!Path::Parse(rule).ok()) {
      return Status::kInvalidArgument;
    }
  }
  rules_ = rules;
  return Status::kOk;
}

Result<SegNo> SearchRules::Search(const std::string& refname, UserInitiator& initiator,
                                  ReferenceNameManager& rnm) const {
  if (auto bound = rnm.Lookup(refname); bound.ok()) {
    return bound;
  }
  for (const std::string& rule : rules_) {
    auto segno = initiator.InitiatePath(rule + ">" + refname);
    if (segno.ok()) {
      (void)rnm.Bind(refname, segno.value());
      return segno;
    }
  }
  return Status::kNotFound;
}

size_t SearchRules::UserRingStateBytes() const {
  size_t bytes = 0;
  for (const std::string& rule : rules_) {
    bytes += rule.size() + 16;
  }
  return bytes;
}

}  // namespace multics
