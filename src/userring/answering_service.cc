#include "src/userring/answering_service.h"

namespace multics {

uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Result<std::unique_ptr<AnsweringService>> AnsweringService::Create(Kernel* kernel) {
  Principal service_principal{"Answering_Service", "SysDaemon", "z"};
  MX_ASSIGN_OR_RETURN(Process * service,
                      kernel->BootstrapProcess("answering_service", service_principal,
                                               MlsLabel::SystemHigh()));
  // The service is trusted *system* code, but not kernel code: ring 1.
  service->set_ring(kRingSupervisor);

  // Its password segment: an ordinary segment whose ACL names only the
  // service. No ring-0 mechanism protects it — the ACL is enough.
  MX_ASSIGN_OR_RETURN(SegNo root, kernel->RootDir(*service));
  SegmentAttributes attrs;
  attrs.acl.Set(AclEntry{"Answering_Service", "SysDaemon", "*", kModeRead | kModeWrite});
  attrs.acl.Set(AclEntry{"*", "*", "*", kModeNull});
  attrs.brackets = RingBrackets{kRingSupervisor, kRingSupervisor, kRingSupervisor};
  MX_ASSIGN_OR_RETURN(Uid pwd_uid, kernel->FsCreateSegment(*service, root, "pwd", attrs));
  (void)pwd_uid;
  MX_ASSIGN_OR_RETURN(InitiateResult init, kernel->Initiate(*service, root, "pwd"));
  MX_RETURN_IF_ERROR(kernel->SegSetLength(*service, init.segno, 1));

  return std::unique_ptr<AnsweringService>(new AnsweringService(kernel, service, init.segno));
}

Status AnsweringService::RegisterUser(const std::string& person, const std::string& project,
                                      const std::string& password,
                                      const MlsLabel& max_clearance) {
  MX_RETURN_IF_ERROR(kernel_->RunAs(*service_));
  const WordOffset base = records_ * kRecordWords;
  if (base + kRecordWords > kPageWords) {
    MX_RETURN_IF_ERROR(kernel_->SegSetLength(*service_, pwd_segno_,
                                             PageOf(base + kRecordWords) + 1));
  }
  Processor& cpu = kernel_->cpu();
  MX_RETURN_IF_ERROR(cpu.Write(pwd_segno_, base, Fnv1a(person + "." + project)));
  MX_RETURN_IF_ERROR(cpu.Write(pwd_segno_, base + 1, Fnv1a(password)));
  MX_RETURN_IF_ERROR(cpu.Write(pwd_segno_, base + 2, max_clearance.categories.bits()));
  MX_RETURN_IF_ERROR(cpu.Write(pwd_segno_, base + 3, static_cast<Word>(max_clearance.level)));
  ++records_;
  return Status::kOk;
}

Result<Process*> AnsweringService::Login(const std::string& person, const std::string& project,
                                         const std::string& password,
                                         const MlsLabel& requested,
                                         std::unique_ptr<Task> program) {
  MX_RETURN_IF_ERROR(kernel_->RunAs(*service_));
  Processor& cpu = kernel_->cpu();
  const uint64_t name_hash = Fnv1a(person + "." + project);
  const uint64_t pwd_hash = Fnv1a(password);

  for (uint32_t record = 0; record < records_; ++record) {
    const WordOffset base = record * kRecordWords;
    MX_ASSIGN_OR_RETURN(Word stored_name, cpu.Read(pwd_segno_, base));
    if (stored_name != name_hash) {
      continue;
    }
    MX_ASSIGN_OR_RETURN(Word stored_pwd, cpu.Read(pwd_segno_, base + 1));
    if (stored_pwd != pwd_hash) {
      break;  // Wrong password.
    }
    MX_ASSIGN_OR_RETURN(Word cats, cpu.Read(pwd_segno_, base + 2));
    MX_ASSIGN_OR_RETURN(Word level, cpu.Read(pwd_segno_, base + 3));
    MlsLabel max_clearance{static_cast<SensitivityLevel>(level),
                           CategorySet(static_cast<uint32_t>(cats))};
    if (!max_clearance.Dominates(requested)) {
      break;  // Asking for more clearance than the registry allows.
    }
    // Entering the user's "subsystem": an ordinary proc_create gate call,
    // legal because the service runs in ring 1.
    if (program == nullptr) {
      program = std::make_unique<FnTask>([](TaskContext&) { return TaskState::kDone; });
    }
    auto process = kernel_->ProcCreate(*service_, person + "_process",
                                       Principal{person, project, "a"}, requested,
                                       std::move(program));
    if (process.ok()) {
      ++successful_logins_;
    }
    return process;
  }
  ++failed_logins_;
  kernel_->audit().Record(kernel_->machine().clock().now(), person + "." + project,
                          "user_ring_login", kInvalidUid, Status::kAuthenticationFailed);
  return Status::kAuthenticationFailed;
}

}  // namespace multics
