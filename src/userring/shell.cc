#include "src/userring/shell.h"

#include <sstream>

namespace multics {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

std::string CommandResult::Text() const {
  std::string text;
  for (const std::string& line : output) {
    text += line;
    text += "\n";
  }
  return text;
}

Shell::Shell(Kernel* kernel, Process* process)
    : kernel_(kernel), process_(process), initiator_(kernel, process) {
  (void)search_rules_.Set({">system_library"});
}

CommandResult Shell::Fail(Status status, const std::string& message) const {
  CommandResult result;
  result.status = status;
  result.output.push_back(message + ": " + std::string(StatusName(status)));
  return result;
}

Result<SegNo> Shell::CwdSegno() { return initiator_.InitiateDirPath(cwd_); }

CommandResult Shell::Execute(const std::string& line) {
  CommandResult result;
  std::vector<std::string> args = Tokenize(line);
  if (args.empty()) {
    return result;
  }
  const std::string& cmd = args[0];

  auto need = [&](size_t n) { return args.size() >= n + 1; };

  if (cmd == "who") {
    result.output.push_back(process_->principal().ToString() + " clearance=" +
                            process_->clearance().ToString() + " ring=" +
                            std::to_string(process_->ring()));
    return result;
  }

  if (cmd == "cwd") {
    if (need(1)) {
      auto parsed = Path::Parse(args[1]);
      if (!parsed.ok()) {
        return Fail(parsed.status(), "cwd");
      }
      auto segno = initiator_.InitiateDirPath(args[1]);
      if (!segno.ok()) {
        return Fail(segno.status(), "cwd " + args[1]);
      }
      (void)kernel_->Terminate(*process_, segno.value());
      cwd_ = parsed->ToString();
    }
    result.output.push_back(cwd_);
    return result;
  }

  if (cmd == "list") {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "list");
    }
    auto names = kernel_->FsList(*process_, dir.value());
    if (!names.ok()) {
      return Fail(names.status(), "list");
    }
    result.output.push_back(cwd_ + ":  " + std::to_string(names->size()) + " entries");
    for (const std::string& name : names.value()) {
      auto status = kernel_->FsStatus(*process_, dir.value(), name);
      std::string detail = status.ok()
                               ? (status->is_directory ? "dir  " : "seg  ") +
                                     status->mode_string + "  " + std::to_string(status->pages) +
                                     "p  " + status->label
                               : std::string(StatusName(status.status()));
      result.output.push_back("  " + name + "  " + detail);
    }
    return result;
  }

  if (cmd == "create_segment" && need(1)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "create_segment");
    }
    SegmentAttributes attrs;
    attrs.acl.Set(AclEntry{process_->principal().person, process_->principal().project, "*",
                           kModeRead | kModeWrite});
    auto uid = kernel_->FsCreateSegment(*process_, dir.value(), args[1], attrs);
    if (!uid.ok()) {
      return Fail(uid.status(), "create_segment " + args[1]);
    }
    result.output.push_back("created " + cwd_ + (cwd_ == ">" ? "" : ">") + args[1]);
    return result;
  }

  if (cmd == "create_dir" && need(1)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "create_dir");
    }
    uint32_t quota = args.size() > 2 ? static_cast<uint32_t>(std::stoul(args[2])) : 0;
    SegmentAttributes attrs;
    attrs.acl.Set(AclEntry{process_->principal().person, process_->principal().project, "*",
                           kDirStatus | kDirModify | kDirAppend});
    attrs.acl.Set(AclEntry{"*", "*", "*", kDirStatus});
    auto uid = kernel_->FsCreateDirectory(*process_, dir.value(), args[1], attrs, quota);
    if (!uid.ok()) {
      return Fail(uid.status(), "create_dir " + args[1]);
    }
    result.output.push_back("created directory " + args[1] +
                            (quota > 0 ? " quota=" + std::to_string(quota) : ""));
    return result;
  }

  if (cmd == "delete" && need(1)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "delete");
    }
    Status status = kernel_->FsDelete(*process_, dir.value(), args[1]);
    if (status != Status::kOk) {
      return Fail(status, "delete " + args[1]);
    }
    result.output.push_back("deleted " + args[1]);
    return result;
  }

  if (cmd == "rename" && need(2)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "rename");
    }
    Status status = kernel_->FsRename(*process_, dir.value(), args[1], args[2]);
    if (status != Status::kOk) {
      return Fail(status, "rename");
    }
    result.output.push_back("renamed " + args[1] + " -> " + args[2]);
    return result;
  }

  if (cmd == "add_name" && need(2)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "add_name");
    }
    Status status = kernel_->FsAddName(*process_, dir.value(), args[1], args[2]);
    if (status != Status::kOk) {
      return Fail(status, "add_name");
    }
    result.output.push_back("added name " + args[2]);
    return result;
  }

  if (cmd == "link" && need(2)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "link");
    }
    Status status = kernel_->FsCreateLink(*process_, dir.value(), args[1], args[2]);
    if (status != Status::kOk) {
      return Fail(status, "link");
    }
    result.output.push_back(args[1] + " -> " + args[2]);
    return result;
  }

  if (cmd == "status" && need(1)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "status");
    }
    auto status = kernel_->FsStatus(*process_, dir.value(), args[1]);
    if (!status.ok()) {
      return Fail(status.status(), "status " + args[1]);
    }
    result.output.push_back(args[1] + ": " + (status->is_directory ? "directory" : "segment") +
                            " modes=" + status->mode_string + " pages=" +
                            std::to_string(status->pages) + " label=" + status->label +
                            " author=" + status->author);
    return result;
  }

  if (cmd == "set_acl" && need(3)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "set_acl");
    }
    auto principal = Principal::Parse(args[2]);
    if (!principal.ok()) {
      return Fail(principal.status(), "set_acl principal");
    }
    auto modes = ParseSegmentModes(args[3]);
    if (!modes.ok()) {
      return Fail(modes.status(), "set_acl modes");
    }
    AclEntry entry{principal->person, principal->project, principal->tag, modes.value()};
    Status status = kernel_->FsSetAcl(*process_, dir.value(), args[1], entry);
    if (status != Status::kOk) {
      return Fail(status, "set_acl");
    }
    result.output.push_back("acl of " + args[1] + ": " + entry.NamePart() + " " +
                            SegmentModeString(entry.modes));
    return result;
  }

  if (cmd == "list_acl" && need(1)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "list_acl");
    }
    auto acl = kernel_->FsListAcl(*process_, dir.value(), args[1]);
    if (!acl.ok()) {
      return Fail(acl.status(), "list_acl");
    }
    for (const std::string& entry : acl.value()) {
      result.output.push_back("  " + entry);
    }
    return result;
  }

  if ((cmd == "print" || cmd == "set") && need(1)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), cmd);
    }
    auto init = kernel_->Initiate(*process_, dir.value(), args[1]);
    if (!init.ok()) {
      return Fail(init.status(), cmd + " " + args[1]);
    }
    if (kernel_->RunAs(*process_) != Status::kOk) {
      return Fail(Status::kInternal, cmd);
    }
    if (cmd == "print") {
      WordOffset offset = args.size() > 2 ? static_cast<WordOffset>(std::stoul(args[2])) : 0;
      auto word = kernel_->cpu().Read(init->segno, offset);
      if (!word.ok()) {
        return Fail(word.status(), "print");
      }
      result.output.push_back(args[1] + "[" + std::to_string(offset) +
                              "] = " + std::to_string(word.value()));
    } else {
      if (!need(3)) {
        return Fail(Status::kInvalidArgument, "set NAME OFFSET VALUE");
      }
      WordOffset offset = static_cast<WordOffset>(std::stoul(args[2]));
      Word value = std::stoull(args[3]);
      // Grow on demand, as stores through a fresh segment did.
      auto pages = kernel_->SegGetLength(*process_, init->segno);
      if (pages.ok() && PageOf(offset) >= pages.value()) {
        Status grow = kernel_->SegSetLength(*process_, init->segno, PageOf(offset) + 1);
        if (grow != Status::kOk) {
          return Fail(grow, "set (grow)");
        }
      }
      Status status = kernel_->cpu().Write(init->segno, offset, value);
      if (status != Status::kOk) {
        return Fail(status, "set");
      }
      result.output.push_back(args[1] + "[" + std::to_string(offset) +
                              "] := " + std::to_string(value));
    }
    return result;
  }

  if (cmd == "truncate" && need(2)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "truncate");
    }
    auto init = kernel_->Initiate(*process_, dir.value(), args[1]);
    if (!init.ok()) {
      return Fail(init.status(), "truncate");
    }
    Status status = kernel_->SegSetLength(*process_, init->segno,
                                          static_cast<uint32_t>(std::stoul(args[2])));
    if (status != Status::kOk) {
      return Fail(status, "truncate");
    }
    result.output.push_back(args[1] + " now " + args[2] + " pages");
    return result;
  }

  if (cmd == "initiate" && need(1)) {
    auto segno = initiator_.InitiatePath(args[1]);
    if (!segno.ok()) {
      return Fail(segno.status(), "initiate " + args[1]);
    }
    (void)rnm_.Bind(Path::Parse(args[1])->Leaf(), segno.value());
    result.output.push_back(args[1] + " initiated as segno " +
                            std::to_string(segno.value()));
    return result;
  }

  if (cmd == "terminate" && need(1)) {
    auto segno = rnm_.Lookup(args[1]);
    if (!segno.ok()) {
      return Fail(segno.status(), "terminate " + args[1]);
    }
    (void)rnm_.Unbind(args[1]);
    Status status = kernel_->Terminate(*process_, segno.value());
    if (status != Status::kOk) {
      return Fail(status, "terminate");
    }
    result.output.push_back(args[1] + " terminated");
    return result;
  }

  if (cmd == "sr" && need(1)) {
    std::vector<std::string> rules(args.begin() + 1, args.end());
    Status status = search_rules_.Set(rules);
    if (status != Status::kOk) {
      return Fail(status, "sr");
    }
    result.output.push_back("search rules set (" + std::to_string(rules.size()) + ")");
    return result;
  }

  if (cmd == "snap" && need(1)) {
    auto dir = CwdSegno();
    if (!dir.ok()) {
      return Fail(dir.status(), "snap");
    }
    auto init = kernel_->Initiate(*process_, dir.value(), args[1]);
    if (!init.ok()) {
      return Fail(init.status(), "snap " + args[1]);
    }
    UserLinker linker(kernel_, process_, &initiator_, &search_rules_, &rnm_);
    auto snapped = linker.SnapAll(init->segno);
    if (!snapped.ok()) {
      return Fail(snapped.status(), "snap " + args[1]);
    }
    result.output.push_back(args[1] + ": " + std::to_string(snapped->snapped) +
                            " links snapped, " + std::to_string(snapped->already_snapped) +
                            " already snapped");
    return result;
  }

  return Fail(Status::kInvalidArgument, "unknown or malformed command '" + cmd + "'");
}

}  // namespace multics
