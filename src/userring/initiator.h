// The user-ring address-space library of the kernelized configuration.
//
// After Bratt's removal project [14] the kernel speaks only segment numbers:
// "Instead of identifying a directory by character string tree name locating
// it in the file system hierarchy, a segment number is used. The algorithms
// for following a tree name through the file system hierarchy to locate the
// named element are thus removed from the supervisor to be implemented by
// procedures executing in the user ring."
//
// UserInitiator is that procedure: it walks a pathname one component at a
// time through the kernel's per-directory Initiate gate, chasing links
// itself, and terminates intermediate directory handles behind it.

#ifndef SRC_USERRING_INITIATOR_H_
#define SRC_USERRING_INITIATOR_H_

#include <string>

#include "src/core/kernel.h"

namespace multics {

class UserInitiator {
 public:
  UserInitiator(Kernel* kernel, Process* process) : kernel_(kernel), process_(process) {}

  // Resolves an absolute pathname to an initiated segment number.
  Result<SegNo> InitiatePath(const std::string& path);

  // Resolves the pathname of a directory and returns its handle segno.
  Result<SegNo> InitiateDirPath(const std::string& path);

  // User-ring work performed (cycles charged to the user, not the kernel).
  uint64_t components_walked() const { return components_walked_; }
  uint64_t links_chased() const { return links_chased_; }

 private:
  Result<SegNo> Walk(const std::string& path_text, int depth);

  Kernel* kernel_;
  Process* process_;
  uint64_t components_walked_ = 0;
  uint64_t links_chased_ = 0;
};

}  // namespace multics

#endif  // SRC_USERRING_INITIATOR_H_
