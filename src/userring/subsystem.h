// User-constructed protected subsystems.
//
// "The inclusion of security kernel facilities to support user-constructed
// protected subsystems provides a tool to reduce the potential damage such a
// borrowed trojan horse can do." A subsystem is an inner-ring domain: a gate
// segment whose brackets admit callers from outer rings only through
// enumerated gate entries, plus private segments whose brackets shut outer
// rings out entirely. The kernel contributes no new mechanism — the rings
// and branches it already has suffice; this builder is pure user-ring code.
//
// The paper's fourth removal project rests on the observation that *login*
// is the same mechanism: creating a process for an authenticated principal
// is entering a protected subsystem whose gate is the answering service
// (src/userring/answering_service.h).

#ifndef SRC_USERRING_SUBSYSTEM_H_
#define SRC_USERRING_SUBSYSTEM_H_

#include <string>

#include "src/core/kernel.h"

namespace multics {

struct Subsystem {
  std::string name;
  SegNo gate_segno = kInvalidSegNo;
  Uid gate_uid = kInvalidUid;
  SegNo data_segno = kInvalidSegNo;
  Uid data_uid = kInvalidUid;
  RingNumber inner = kRingUser;
  uint32_t entries = 0;
};

class SubsystemBuilder {
 public:
  SubsystemBuilder(Kernel* kernel, Process* owner) : kernel_(kernel), owner_(owner) {}

  // Creates a subsystem rooted in `dir_segno`: a gate segment executing at
  // ring `inner` callable from rings up to `callers` through `entries` gate
  // entry points, and a private data segment locked to ring <= inner.
  // `inner` must be >= the owner's current ring.
  Result<Subsystem> Create(SegNo dir_segno, const std::string& name, RingNumber inner,
                           RingNumber callers, uint32_t entries);

  // Enters the subsystem through `entry` (an inward gate call on the
  // simulated CPU; the caller must be bound with Kernel::RunAs first and
  // must not rebind until Exit). Returns the ring now executing.
  Result<RingNumber> Enter(const Subsystem& subsystem, WordOffset entry);
  Status Exit();

 private:
  Kernel* kernel_;
  Process* owner_;
};

}  // namespace multics

#endif  // SRC_USERRING_SUBSYSTEM_H_
