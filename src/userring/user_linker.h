// The user-ring dynamic linker (Janson's removal project [12,13]).
//
// Same algorithm as the old in-kernel linker (src/link/linker.h), but it
// executes with the user's own authority: words are read and written through
// the processor in the user's ring (so ring brackets and permission bits
// apply), segment names resolve through the user-ring search rules, and —
// critically — a maliciously malstructured object segment can only hurt the
// process that supplied it. It also validates its input, which the kernel
// linker never did.
//
// "The second interesting result of the linker's removal was the
// demonstration that linking procedures together across protection
// boundaries, i.e., rings, could be done without resort to a mechanism
// common to both protection regions."

#ifndef SRC_USERRING_USER_LINKER_H_
#define SRC_USERRING_USER_LINKER_H_

#include "src/link/linker.h"
#include "src/userring/rnm.h"

namespace multics {

class UserRingLinkEnv : public LinkageEnvironment {
 public:
  UserRingLinkEnv(Kernel* kernel, Process* process, UserInitiator* initiator,
                  SearchRules* search_rules, ReferenceNameManager* rnm)
      : kernel_(kernel),
        process_(process),
        initiator_(initiator),
        search_rules_(search_rules),
        rnm_(rnm) {}

  Result<SegNo> FindSegment(const std::string& name) override;
  Result<Word> ReadWord(SegNo segno, WordOffset offset) override;
  Status WriteWord(SegNo segno, WordOffset offset, Word value) override;
  Result<uint32_t> SegmentLengthWords(SegNo segno) override;

 private:
  Kernel* kernel_;
  Process* process_;
  UserInitiator* initiator_;
  SearchRules* search_rules_;
  ReferenceNameManager* rnm_;
};

class UserLinker {
 public:
  UserLinker(Kernel* kernel, Process* process, UserInitiator* initiator,
             SearchRules* search_rules, ReferenceNameManager* rnm)
      : env_(kernel, process, initiator, search_rules, rnm),
        linker_(&env_, /*validate_input=*/true) {}

  Result<LinkSnapResult> SnapAll(SegNo object) { return linker_.SnapAll(object); }
  Result<std::pair<SegNo, WordOffset>> SnapOne(SegNo object, uint32_t index) {
    return linker_.SnapOne(object, index);
  }
  Result<WordOffset> LookupSymbol(SegNo object, const std::string& name) {
    return linker_.LookupSymbol(object, name);
  }
  Result<ObjectHeader> Header(SegNo object) { return linker_.Header(object); }

  // Faults the malformed input caused — all of them confined to this ring.
  uint64_t confined_faults() const { return linker_.wild_references(); }

 private:
  UserRingLinkEnv env_;
  Linker linker_;
};

}  // namespace multics

#endif  // SRC_USERRING_USER_LINKER_H_
