// A Multics-flavored command environment, implemented entirely in the user
// ring. The paper's first category of non-kernel software: system-provided
// programs that execute as part of user computations — "library subroutines,
// compilers, and applications packages... plus all the programs usually part
// of a supervisor that are not included in a security kernel." The shell is
// exactly such a program: it holds only private per-process state (working
// directory, reference names, search rules) and reaches everything else
// through gates.
//
// Commands (a subset of the classic command repertoire):
//   cwd [path]                  print or change the working directory
//   list                        list the working directory
//   create_segment NAME         create a segment (rw to self)
//   create_dir NAME [quota]     create a directory
//   delete NAME                 delete an entry
//   rename OLD NEW              rename an entry
//   add_name OLD NEW            add an additional name
//   link NAME TARGET_PATH       create a link
//   status NAME                 print branch status
//   set_acl NAME PRINCIPAL MODES   e.g. set_acl memo Smith.Faculty r
//   list_acl NAME               print the ACL
//   print NAME [offset]         read a word through the processor
//   set NAME OFFSET VALUE       write a word through the processor
//   truncate NAME PAGES         set segment length
//   initiate PATH               initiate by full path (user-ring resolution)
//   terminate NAME              terminate by entry name in the cwd
//   sr RULE...                  set search rules
//   snap NAME                   run the user-ring linker over an object seg
//   who                         print principal/clearance/ring
//
// Every command returns the kernel's verdict verbatim; denials are normal
// output, not crashes.

#ifndef SRC_USERRING_SHELL_H_
#define SRC_USERRING_SHELL_H_

#include <string>
#include <vector>

#include "src/userring/rnm.h"
#include "src/userring/user_linker.h"

namespace multics {

struct CommandResult {
  Status status = Status::kOk;
  std::vector<std::string> output;

  std::string Text() const;
};

class Shell {
 public:
  Shell(Kernel* kernel, Process* process);

  // Parses and executes one command line.
  CommandResult Execute(const std::string& line);

  const std::string& cwd() const { return cwd_; }
  ReferenceNameManager& rnm() { return rnm_; }
  SearchRules& search_rules() { return search_rules_; }

 private:
  CommandResult Fail(Status status, const std::string& message) const;
  Result<SegNo> CwdSegno();

  Kernel* kernel_;
  Process* process_;
  UserInitiator initiator_;
  ReferenceNameManager rnm_;
  SearchRules search_rules_;
  std::string cwd_ = ">";
};

// Splits a command line on blanks (no quoting; Multics used blanks too).
std::vector<std::string> Tokenize(const std::string& line);

}  // namespace multics

#endif  // SRC_USERRING_SHELL_H_
