// The user-ring reference name manager: the private half of the old KST.
//
// "Removal of this naming mechanism from the supervisor required that a data
// base central to the management of the address space, the known segment
// table, be split into a private and a common part" [14]. The common part
// (uid <-> segno) stayed in the kernel (src/fs/kst.h); this is the private
// part — reference names and search rules — now ordinary user-ring data,
// breakproof against other processes without costing the kernel a line.

#ifndef SRC_USERRING_RNM_H_
#define SRC_USERRING_RNM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/hw/word.h"
#include "src/userring/initiator.h"

namespace multics {

class ReferenceNameManager {
 public:
  Status Bind(const std::string& name, SegNo segno);
  Result<SegNo> Lookup(const std::string& name) const;
  Status Unbind(const std::string& name);
  std::vector<std::string> Names() const;
  size_t size() const { return names_.size(); }

  // For the E3 comparison: this state lives in the user ring, not ring 0.
  size_t UserRingStateBytes() const;

 private:
  std::unordered_map<std::string, SegNo> names_;
};

// User-ring search rules: an ordered list of directories to probe when a
// symbolic reference ("refname") must be resolved to a segment.
class SearchRules {
 public:
  Status Set(const std::vector<std::string>& rules);
  const std::vector<std::string>& rules() const { return rules_; }

  // Resolve refname: reference names first, then each rule directory.
  // Successful resolutions are cached as reference names.
  Result<SegNo> Search(const std::string& refname, UserInitiator& initiator,
                       ReferenceNameManager& rnm) const;

  size_t UserRingStateBytes() const;

 private:
  std::vector<std::string> rules_;
};

}  // namespace multics

#endif  // SRC_USERRING_RNM_H_
