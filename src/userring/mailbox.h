// Mailboxes: a common mechanism set up among users by mutual consent — the
// paper's fourth category of non-kernel software. "If a user agrees to
// become party to such a common mechanism, then he must satisfy himself of
// its trustworthiness."
//
// The mechanism is built from nothing but kernel primitives: one shared
// segment (the message store, ACL-limited to the members) and one event
// channel guarded by that same segment — so the kernel's standard memory
// protection already decides who may send (write access) and who may wait
// (read access). The kernel contributes no mailbox-specific code at all.
//
// Segment layout (one page grows as needed):
//   word 0   message count (write cursor)
//   word 1   event channel id
//   then fixed 32-word records:
//     [0..3]   sender principal, packed 8 chars/word
//     [4]      text length in bytes
//     [5..31]  text, packed

#ifndef SRC_USERRING_MAILBOX_H_
#define SRC_USERRING_MAILBOX_H_

#include <string>
#include <vector>

#include "src/core/kernel.h"

namespace multics {

struct MailboxMessage {
  std::string sender;
  std::string text;
};

class Mailbox {
 public:
  // Creates the mailbox segment in `dir_segno` with an ACL admitting exactly
  // `members` (rw) and wires up its guarded event channel.
  static Result<Mailbox> Create(Kernel* kernel, Process* owner, SegNo dir_segno,
                                const std::string& name,
                                const std::vector<Principal>& members);

  // Opens an existing mailbox (initiates the segment, reads the channel id).
  // Fails with the reference monitor's verdict for non-members.
  static Result<Mailbox> Open(Kernel* kernel, Process* user, SegNo dir_segno,
                              const std::string& name);

  // Appends a message and wakes any waiter. Requires write access — which
  // the kernel enforces, not this class.
  Status Send(const std::string& text);

  // Reads messages this handle has not seen yet.
  Result<std::vector<MailboxMessage>> ReadNew();

  // True when messages are pending beyond this handle's cursor.
  Result<bool> HasNew();

  ChannelId channel() const { return channel_; }
  SegNo segno() const { return segno_; }

  static constexpr uint32_t kRecordWords = 32;
  static constexpr uint32_t kHeaderWords = 2;
  static constexpr uint32_t kMaxTextBytes = (kRecordWords - 5) * 8;

 private:
  Mailbox(Kernel* kernel, Process* user, SegNo segno, ChannelId channel)
      : kernel_(kernel), user_(user), segno_(segno), channel_(channel) {}

  Result<Word> ReadWord(WordOffset offset);
  Status WriteWord(WordOffset offset, Word value);

  Kernel* kernel_;
  Process* user_;
  SegNo segno_;
  ChannelId channel_;
  uint64_t cursor_ = 0;  // Messages this handle has consumed.
};

}  // namespace multics

#endif  // SRC_USERRING_MAILBOX_H_
