#include "src/userring/mailbox.h"

#include "src/link/object_format.h"

namespace multics {

Result<Word> Mailbox::ReadWord(WordOffset offset) {
  MX_RETURN_IF_ERROR(kernel_->RunAs(*user_));
  return kernel_->cpu().Read(segno_, offset);
}

Status Mailbox::WriteWord(WordOffset offset, Word value) {
  MX_RETURN_IF_ERROR(kernel_->RunAs(*user_));
  return kernel_->cpu().Write(segno_, offset, value);
}

Result<Mailbox> Mailbox::Create(Kernel* kernel, Process* owner, SegNo dir_segno,
                                const std::string& name,
                                const std::vector<Principal>& members) {
  SegmentAttributes attrs;
  for (const Principal& member : members) {
    attrs.acl.Set(AclEntry{member.person, member.project, "*", kModeRead | kModeWrite});
  }
  attrs.acl.Set(AclEntry{"*", "*", "*", kModeNull});
  MX_ASSIGN_OR_RETURN(Uid uid, kernel->FsCreateSegment(*owner, dir_segno, name, attrs));
  (void)uid;
  MX_ASSIGN_OR_RETURN(InitiateResult init, kernel->Initiate(*owner, dir_segno, name));
  MX_RETURN_IF_ERROR(kernel->SegSetLength(*owner, init.segno, 1));

  // The channel is guarded by the mailbox segment itself: senders need write
  // access, waiters read access — membership *is* the ACL.
  MX_ASSIGN_OR_RETURN(ChannelId channel, kernel->IpcCreateChannel(*owner, init.segno));

  Mailbox mailbox(kernel, owner, init.segno, channel);
  MX_RETURN_IF_ERROR(mailbox.WriteWord(0, 0));
  MX_RETURN_IF_ERROR(mailbox.WriteWord(1, channel));
  return mailbox;
}

Result<Mailbox> Mailbox::Open(Kernel* kernel, Process* user, SegNo dir_segno,
                              const std::string& name) {
  MX_ASSIGN_OR_RETURN(InitiateResult init, kernel->Initiate(*user, dir_segno, name));
  Mailbox mailbox(kernel, user, init.segno, 0);
  MX_ASSIGN_OR_RETURN(Word channel, mailbox.ReadWord(1));
  mailbox.channel_ = channel;
  return mailbox;
}

Status Mailbox::Send(const std::string& text) {
  if (text.size() > kMaxTextBytes) {
    return Status::kInvalidArgument;
  }
  MX_ASSIGN_OR_RETURN(Word count, ReadWord(0));
  const WordOffset base = kHeaderWords + static_cast<WordOffset>(count) * kRecordWords;

  // Grow the segment when the next record spills past the current length.
  auto pages = kernel_->SegGetLength(*user_, segno_);
  if (!pages.ok()) {
    return pages.status();
  }
  if (PageOf(base + kRecordWords) >= pages.value()) {
    MX_RETURN_IF_ERROR(
        kernel_->SegSetLength(*user_, segno_, PageOf(base + kRecordWords) + 1));
  }

  Word packed_sender[kPackedNameWords];
  PackName(user_->principal().ToString(), packed_sender);
  for (uint32_t w = 0; w < kPackedNameWords; ++w) {
    MX_RETURN_IF_ERROR(WriteWord(base + w, packed_sender[w]));
  }
  MX_RETURN_IF_ERROR(WriteWord(base + 4, text.size()));
  for (uint32_t w = 0; w * 8 < text.size(); ++w) {
    Word packed = 0;
    for (uint32_t b = 0; b < 8 && w * 8 + b < text.size(); ++b) {
      packed |= static_cast<Word>(static_cast<unsigned char>(text[w * 8 + b])) << (b * 8);
    }
    MX_RETURN_IF_ERROR(WriteWord(base + 5 + w, packed));
  }
  MX_RETURN_IF_ERROR(WriteWord(0, count + 1));
  // The wakeup passes the kernel's guard check (write on this segment).
  return kernel_->IpcWakeup(*user_, channel_, count + 1);
}

Result<std::vector<MailboxMessage>> Mailbox::ReadNew() {
  MX_ASSIGN_OR_RETURN(Word count, ReadWord(0));
  std::vector<MailboxMessage> messages;
  for (; cursor_ < count; ++cursor_) {
    const WordOffset base =
        kHeaderWords + static_cast<WordOffset>(cursor_) * kRecordWords;
    Word packed_sender[kPackedNameWords];
    for (uint32_t w = 0; w < kPackedNameWords; ++w) {
      MX_ASSIGN_OR_RETURN(packed_sender[w], ReadWord(base + w));
    }
    MX_ASSIGN_OR_RETURN(Word length, ReadWord(base + 4));
    MailboxMessage message;
    message.sender = UnpackName(packed_sender);
    length = std::min<Word>(length, kMaxTextBytes);
    for (uint32_t w = 0; w * 8 < length; ++w) {
      MX_ASSIGN_OR_RETURN(Word packed, ReadWord(base + 5 + w));
      for (uint32_t b = 0; b < 8 && w * 8 + b < length; ++b) {
        message.text += static_cast<char>((packed >> (b * 8)) & 0xFF);
      }
    }
    messages.push_back(std::move(message));
  }
  return messages;
}

Result<bool> Mailbox::HasNew() {
  MX_ASSIGN_OR_RETURN(Word count, ReadWord(0));
  return count > cursor_;
}

}  // namespace multics
