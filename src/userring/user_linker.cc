#include "src/userring/user_linker.h"

namespace multics {

Result<SegNo> UserRingLinkEnv::FindSegment(const std::string& name) {
  return search_rules_->Search(name, *initiator_, *rnm_);
}

Result<Word> UserRingLinkEnv::ReadWord(SegNo segno, WordOffset offset) {
  // Through the processor, in the user's ring: brackets and bits apply.
  MX_RETURN_IF_ERROR(kernel_->RunAs(*process_));
  return kernel_->cpu().Read(segno, offset);
}

Status UserRingLinkEnv::WriteWord(SegNo segno, WordOffset offset, Word value) {
  MX_RETURN_IF_ERROR(kernel_->RunAs(*process_));
  return kernel_->cpu().Write(segno, offset, value);
}

Result<uint32_t> UserRingLinkEnv::SegmentLengthWords(SegNo segno) {
  return kernel_->SegGetLength(*process_, segno).value_or(0) * kPageWords;
}

}  // namespace multics
