#include "src/fs/pathname.h"

#include <sstream>

namespace multics {

bool ValidEntryName(const std::string& name) {
  if (name.empty() || name.size() > kMaxNameLength) {
    return false;
  }
  if (name == "." || name == "..") {
    return false;
  }
  for (char c : name) {
    if (c == '>' || c == '<' || c == '\0' || c == '\n') {
      return false;
    }
  }
  return true;
}

std::string Path::ToString() const {
  if (components.empty()) {
    return ">";
  }
  std::string out;
  for (const std::string& c : components) {
    out += ">";
    out += c;
  }
  return out;
}

Path Path::Parent() const {
  Path parent = *this;
  if (!parent.components.empty()) {
    parent.components.pop_back();
  }
  return parent;
}

Path Path::Child(const std::string& name) const {
  Path child = *this;
  child.components.push_back(name);
  return child;
}

Result<Path> Path::Parse(const std::string& text) {
  if (text.empty() || text[0] != '>') {
    return Status::kInvalidArgument;  // Only absolute paths at this layer.
  }
  Path path;
  std::istringstream is(text.substr(1));
  std::string component;
  while (std::getline(is, component, '>')) {
    if (component.empty()) {
      continue;  // ">" root, or stray ">>".
    }
    if (!ValidEntryName(component)) {
      return Status::kInvalidArgument;
    }
    if (path.components.size() >= kMaxPathComponents) {
      return Status::kOutOfRange;
    }
    path.components.push_back(component);
  }
  return path;
}

}  // namespace multics
