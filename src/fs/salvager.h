// The salvager: the file-system consistency checker and repairer that every
// Multics start ran after an unclean shutdown. The paper's review activity
// keeps it honest company — "undesired" results from crashes must not turn
// into "unauthorized" ones, so the storage system has to be brought back to
// a state the reference monitor's assumptions hold in: every directory entry
// points at a live branch, every branch is reachable, every quota cell
// equals the sum of what is charged below it.
//
// Failure contract: Run never CHECKs on hierarchy damage — torn state is its
// input, not a programmer error. It returns a Status instead:
//   - kFailedPrecondition if `repair` is requested while any segment is
//     still active (repairing under live page traffic would race the very
//     structures being fixed; deactivate everything first, as a real
//     crash-restart does). Scan-only runs are allowed on a live system.
//   - kSegmentDamaged if the root branch itself is missing — nothing below
//     it can be trusted, and inventing a new root would forge authority.
//   - any error from creating >lost_found (e.g. the name is taken by a
//     non-directory): the salvager refuses to guess and reports rather than
//     silently attaching orphans somewhere surprising.
// A successful Run(…, /*repair=*/true) leaves a hierarchy on which an
// immediately following scan-only Run reports zero repairs. The salvager
// only ever *narrows* authority: it removes dangling entries and rebuilds
// structural bookkeeping, but never edits ACLs, MLS labels, or ring
// brackets.

#ifndef SRC_FS_SALVAGER_H_
#define SRC_FS_SALVAGER_H_

#include "src/fs/hierarchy.h"

namespace multics {

struct SalvageReport {
  uint32_t directories_scanned = 0;
  uint32_t entries_checked = 0;
  uint32_t dangling_entries_removed = 0;  // Entries naming nonexistent branches.
  uint32_t bad_links_removed = 0;         // Links whose target does not parse.
  uint32_t orphans_reattached = 0;        // Live branches reachable from no directory.
  uint32_t parent_fixups = 0;             // branch.parent disagreed with the entry.
  uint32_t quota_corrections = 0;         // quota_used recomputed.
  uint32_t directories_rebuilt = 0;       // Directory branches missing their catalogue.

  uint32_t total_repairs() const {
    return dangling_entries_removed + bad_links_removed + orphans_reattached + parent_fixups +
           quota_corrections + directories_rebuilt;
  }
};

class Salvager {
 public:
  // Scans (and, when `repair` is set, fixes) the hierarchy. Orphans are
  // reattached under >lost_found, created on demand.
  static Result<SalvageReport> Run(Hierarchy& hierarchy, bool repair);
};

}  // namespace multics

#endif  // SRC_FS_SALVAGER_H_
