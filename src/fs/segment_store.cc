#include "src/fs/segment_store.h"

#include "src/base/log.h"

namespace multics {

SegmentStore::SegmentStore(Machine* machine, ActiveSegmentTable* ast, PagingDevice* disk)
    : machine_(machine), ast_(ast), disk_(disk) {}

Result<Uid> SegmentStore::Create(const SegmentAttributes& attrs, bool is_directory, Uid parent) {
  if (parent != kInvalidUid) {
    auto it = branches_.find(parent);
    if (it == branches_.end()) {
      return Status::kNoSuchDirectory;
    }
    if (!it->second.is_directory) {
      return Status::kNotADirectory;
    }
  }
  Uid uid = next_uid_++;
  Branch branch;
  branch.uid = uid;
  branch.parent = parent;
  branch.is_directory = is_directory;
  branch.pages = 0;
  branch.max_pages = attrs.max_pages;
  branch.acl = attrs.acl;
  branch.label = attrs.label;
  branch.brackets = attrs.brackets;
  branch.gate = attrs.gate;
  branch.gate_entries = attrs.gate_entries;
  branch.author = attrs.author;
  branch.date_created = machine_->clock().now();
  branch.date_modified = branch.date_created;
  branches_[uid] = std::move(branch);
  return uid;
}

Result<Branch*> SegmentStore::Get(Uid uid) {
  auto it = branches_.find(uid);
  if (it == branches_.end()) {
    return Status::kNoSuchSegment;
  }
  return &it->second;
}

Status SegmentStore::QuotaCharge(Uid parent, int64_t delta_pages) {
  // Find the nearest ancestor directory carrying a quota.
  Uid current = parent;
  while (current != kInvalidUid) {
    auto it = branches_.find(current);
    if (it == branches_.end()) {
      break;
    }
    Branch& dir = it->second;
    if (dir.quota_pages > 0) {
      int64_t next_used = static_cast<int64_t>(dir.quota_used) + delta_pages;
      if (next_used < 0) {
        next_used = 0;
      }
      if (next_used > static_cast<int64_t>(dir.quota_pages)) {
        return Status::kQuotaExceeded;
      }
      dir.quota_used = static_cast<uint32_t>(next_used);
      return Status::kOk;
    }
    current = dir.parent;
  }
  return Status::kOk;  // No quota anywhere up the chain: unlimited.
}

Result<ActiveSegment*> SegmentStore::Activate(Uid uid, bool wired) {
  // Activation mutates the AST (and may evict through DeactivateNow, which
  // re-enters this lock); the page-table lock nests inside when a flush runs.
  LockGuard ast(machine_->locks().Ast());
  auto it = branches_.find(uid);
  if (it == branches_.end()) {
    return Status::kNoSuchSegment;
  }
  Branch& branch = it->second;

  if (ActiveSegment* existing = ast_->Find(uid); existing != nullptr) {
    return existing;
  }

  auto seg = ast_->Activate(uid, branch.pages, branch.disk_home);
  if (!seg.ok() && seg.status() == Status::kResourceExhausted) {
    MX_RETURN_IF_ERROR(EvictOneInactive());
    seg = ast_->Activate(uid, branch.pages, branch.disk_home);
  }
  if (!seg.ok()) {
    return seg.status();
  }
  seg.value()->wired = wired;
  return seg.value();
}

Status SegmentStore::DropRef(Uid uid) {
  auto it = refs_.find(uid);
  if (it == refs_.end() || it->second == 0) {
    return Status::kFailedPrecondition;
  }
  --it->second;
  return Status::kOk;
}

uint32_t SegmentStore::RefCount(Uid uid) const {
  auto it = refs_.find(uid);
  return it == refs_.end() ? 0 : it->second;
}

Status SegmentStore::Deactivate(Uid uid) { return DeactivateNow(uid); }

Status SegmentStore::EvictOneInactive() {
  // Prefer segments nobody has initiated; fall back to any unwired segment
  // (its SDWs get invalidated through the hook and reload on segment fault).
  Uid zero_ref_victim = kInvalidUid;
  Uid any_victim = kInvalidUid;
  ast_->ForEach([&](ActiveSegment* seg) {
    if (seg->wired) {
      return;
    }
    if (any_victim == kInvalidUid) {
      any_victim = seg->uid;
    }
    if (zero_ref_victim == kInvalidUid && RefCount(seg->uid) == 0) {
      zero_ref_victim = seg->uid;
    }
  });
  Uid victim = zero_ref_victim != kInvalidUid ? zero_ref_victim : any_victim;
  if (victim == kInvalidUid) {
    return Status::kResourceExhausted;
  }
  return DeactivateNow(victim);
}

Status SegmentStore::DeactivateNow(Uid uid) {
  LockGuard ast(machine_->locks().Ast());
  ActiveSegment* seg = ast_->Find(uid);
  if (seg == nullptr) {
    return Status::kNotFound;
  }
  if (deactivate_hook_) {
    deactivate_hook_(uid);  // Disconnect SDWs before the page table dies.
  }
  CHECK(page_control_ != nullptr);
  MX_RETURN_IF_ERROR(page_control_->FlushSegment(seg));

  auto it = branches_.find(uid);
  CHECK(it != branches_.end());
  Branch& branch = it->second;
  branch.pages = seg->pages;
  branch.disk_home.assign(seg->pages, kInvalidDevAddr);
  for (PageNo p = 0; p < seg->pages; ++p) {
    if (seg->location[p].level == PageLevel::kDisk) {
      branch.disk_home[p] = seg->location[p].addr;
    }
  }
  return ast_->Deactivate(uid);
}

Status SegmentStore::FreePageStorage(ActiveSegment* seg, PageNo page) {
  PageLoc& loc = seg->location[page];
  switch (loc.level) {
    case PageLevel::kZero:
      return Status::kOk;
    case PageLevel::kCore: {
      // Shrinking past a resident page: flush-style release of the frame.
      PageTableEntry& pte = seg->page_table.entries[page];
      pte.present = false;
      // Page control owns the core map; route the release through a flush of
      // just this page by marking it zero and letting FlushSegment skip it.
      // Simpler and correct here: the caller must flush before shrinking.
      return Status::kFailedPrecondition;
    }
    case PageLevel::kBulk:
      return Status::kFailedPrecondition;
    case PageLevel::kDisk: {
      Status st = disk_->Free(loc.addr);
      loc = PageLoc{PageLevel::kZero, kInvalidDevAddr};
      return st;
    }
    case PageLevel::kInTransit:
      return Status::kFailedPrecondition;
  }
  return Status::kInternal;
}

Status SegmentStore::SetLength(Uid uid, uint32_t pages) {
  LockGuard ast(machine_->locks().Ast());
  auto it = branches_.find(uid);
  if (it == branches_.end()) {
    return Status::kNoSuchSegment;
  }
  Branch& branch = it->second;
  if (pages > branch.max_pages || pages > kMaxSegmentPages) {
    return Status::kSegmentTooLong;
  }
  ActiveSegment* seg = ast_->Find(uid);
  const uint32_t old_pages = seg != nullptr ? seg->pages : branch.pages;
  if (pages == old_pages) {
    return Status::kOk;
  }

  MX_RETURN_IF_ERROR(
      QuotaCharge(branch.parent, static_cast<int64_t>(pages) - static_cast<int64_t>(old_pages)));

  if (pages < old_pages) {
    // Shrink: truncated pages must not be resident above disk. Flush first
    // when the segment is active.
    if (seg != nullptr) {
      CHECK(page_control_ != nullptr);
      Status st = page_control_->FlushSegment(seg);
      if (st != Status::kOk) {
        (void)QuotaCharge(branch.parent,
                          static_cast<int64_t>(old_pages) - static_cast<int64_t>(pages));
        return st;
      }
      for (PageNo p = pages; p < old_pages; ++p) {
        (void)FreePageStorage(seg, p);
      }
      seg->Resize(pages);
    } else {
      for (PageNo p = pages; p < old_pages && p < branch.disk_home.size(); ++p) {
        if (branch.disk_home[p] != kInvalidDevAddr) {
          (void)disk_->Free(branch.disk_home[p]);
        }
      }
      branch.disk_home.resize(pages);
    }
  } else {
    if (seg != nullptr) {
      seg->Resize(pages);
    } else {
      branch.disk_home.resize(pages, kInvalidDevAddr);
    }
  }

  branch.pages = pages;
  branch.date_modified = machine_->clock().now();
  return Status::kOk;
}

Status SegmentStore::Delete(Uid uid) {
  auto it = branches_.find(uid);
  if (it == branches_.end()) {
    return Status::kNoSuchSegment;
  }
  if (auto ref_it = refs_.find(uid); ref_it != refs_.end() && ref_it->second > 0) {
    return Status::kFailedPrecondition;  // Still initiated somewhere.
  }
  if (ast_->Find(uid) != nullptr) {
    MX_RETURN_IF_ERROR(DeactivateNow(uid));
  }
  Branch& branch = it->second;
  for (DevAddr addr : branch.disk_home) {
    if (addr != kInvalidDevAddr) {
      (void)disk_->Free(addr);
    }
  }
  (void)QuotaCharge(branch.parent, -static_cast<int64_t>(branch.pages));
  branches_.erase(it);
  return Status::kOk;
}

Status SegmentStore::DeactivateAll() {
  // Shutdown: everything goes home to disk, wired or not, referenced or not.
  LockGuard ast(machine_->locks().Ast());
  std::vector<Uid> active;
  ast_->ForEach([&](ActiveSegment* seg) { active.push_back(seg->uid); });
  for (Uid uid : active) {
    MX_RETURN_IF_ERROR(DeactivateNow(uid));
  }
  return Status::kOk;
}

}  // namespace multics
