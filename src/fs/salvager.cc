#include "src/fs/salvager.h"

#include <unordered_map>
#include <unordered_set>

namespace multics {

Result<SalvageReport> Salvager::Run(Hierarchy& hierarchy, bool repair) {
  SalvageReport report;
  SegmentStore& store = *hierarchy.store_;

  // Repair demands a quiescent store: fixing branch/quota structures while
  // segments are active would race live page traffic. Scanning is safe.
  if (repair && store.active_count() > 0) {
    return Status::kFailedPrecondition;
  }
  // A missing root is beyond salvage — inventing one would forge authority.
  if (!store.Exists(hierarchy.root_)) {
    return Status::kSegmentDamaged;
  }

  // --- Pass 1: every directory entry must name a live branch; every live
  // link must parse; every named branch must agree about its parent. -------
  std::vector<Uid> ghost_directories;
  for (auto& [dir_uid, directory] : hierarchy.directories_) {
    if (!store.Exists(dir_uid)) {
      ghost_directories.push_back(dir_uid);
      continue;
    }
    ++report.directories_scanned;
    std::vector<std::string> to_remove;
    for (const DirEntry& entry : directory.entries()) {
      ++report.entries_checked;
      if (entry.is_link) {
        if (!Path::Parse(entry.link_target).ok()) {
          ++report.bad_links_removed;
          to_remove.push_back(entry.name);
        }
        continue;
      }
      if (!store.Exists(entry.uid)) {
        ++report.dangling_entries_removed;
        to_remove.push_back(entry.name);
        continue;
      }
      Branch* branch = store.Get(entry.uid).value();
      if (branch->parent != dir_uid) {
        ++report.parent_fixups;
        if (repair) {
          branch->parent = dir_uid;
        }
      }
    }
    if (repair) {
      for (const std::string& name : to_remove) {
        (void)directory.Remove(name);
      }
    }
  }
  if (repair) {
    for (Uid ghost : ghost_directories) {
      hierarchy.directories_.erase(ghost);
    }
  }

  // --- Pass 1.5: every directory branch must have its entry catalogue. A
  // crash between creating the branch and registering the catalogue leaves
  // GetDir failing with kNotADirectory on a legitimate (empty) directory;
  // rebuild the catalogue so the branch is usable again.
  store.ForEachBranch([&](Branch& branch) {
    if (branch.is_directory && !hierarchy.directories_.contains(branch.uid)) {
      ++report.directories_rebuilt;
      if (repair) {
        hierarchy.directories_[branch.uid] = Directory{};
      }
    }
  });

  // --- Pass 2: reachability. Branches no directory names get reattached
  // under >lost_found. ------------------------------------------------------
  std::unordered_set<Uid> reachable;
  reachable.insert(hierarchy.root_);
  std::vector<Uid> stack{hierarchy.root_};
  while (!stack.empty()) {
    Uid dir = stack.back();
    stack.pop_back();
    auto it = hierarchy.directories_.find(dir);
    if (it == hierarchy.directories_.end()) {
      continue;
    }
    for (const DirEntry& entry : it->second.entries()) {
      if (entry.is_link || !store.Exists(entry.uid)) {
        continue;
      }
      if (reachable.insert(entry.uid).second && store.Get(entry.uid).value()->is_directory) {
        stack.push_back(entry.uid);
      }
    }
  }

  std::vector<Uid> orphans;
  store.ForEachBranch([&](Branch& branch) {
    if (!reachable.contains(branch.uid)) {
      orphans.push_back(branch.uid);
    }
  });
  if (!orphans.empty() && repair) {
    Uid lost_found = kInvalidUid;
    auto existing = hierarchy.Lookup(hierarchy.root_, "lost_found");
    // The existing entry is only usable if it names a live *directory*;
    // reattaching orphans "under" a plain segment would invent a bogus
    // catalogue keyed by a segment UID.
    if (existing.ok() && !existing->is_link && store.Exists(existing->uid) &&
        store.Get(existing->uid).value()->is_directory &&
        hierarchy.directories_.contains(existing->uid)) {
      lost_found = existing->uid;
    } else if (existing.ok() && !existing->is_link) {
      // The name is taken by something unusable: refuse to guess.
      return Status::kNameDuplication;
    } else {
      SegmentAttributes attrs;
      attrs.acl.Set(AclEntry{"*", "SysDaemon", "*", kDirStatus | kDirModify | kDirAppend});
      attrs.author = Principal{"Salvager", "SysDaemon", "z"};
      auto created = hierarchy.CreateDirectory(hierarchy.root_, "lost_found", attrs);
      if (!created.ok()) {
        return created.status();
      }
      lost_found = created.value();
    }
    for (Uid orphan : orphans) {
      if (orphan == lost_found) {
        continue;
      }
      Branch* branch = store.Get(orphan).value();
      Directory& dir = hierarchy.directories_[lost_found];
      std::string name = "orphan_" + std::to_string(orphan);
      if (dir.Find(name) == nullptr) {
        (void)dir.Add(DirEntry{name, orphan, false, {}});
      }
      branch->parent = lost_found;
      if (branch->is_directory && !hierarchy.directories_.contains(orphan)) {
        hierarchy.directories_[orphan] = Directory{};
      }
      ++report.orphans_reattached;
    }
  } else {
    report.orphans_reattached = static_cast<uint32_t>(orphans.size());
  }

  // --- Pass 3: recompute quota charges. Every segment's pages charge the
  // nearest ancestor directory that carries a quota. ------------------------
  std::unordered_map<Uid, uint32_t> charged;
  store.ForEachBranch([&](Branch& branch) {
    if (branch.is_directory || branch.pages == 0) {
      return;
    }
    Uid current = branch.parent;
    for (int depth = 0; depth < 64 && current != kInvalidUid; ++depth) {
      auto parent = store.Get(current);
      if (!parent.ok()) {
        break;
      }
      if (parent.value()->quota_pages > 0) {
        charged[current] += branch.pages;
        break;
      }
      current = parent.value()->parent;
    }
  });
  store.ForEachBranch([&](Branch& branch) {
    if (!branch.is_directory || branch.quota_pages == 0) {
      return;
    }
    uint32_t actual = charged.contains(branch.uid) ? charged[branch.uid] : 0;
    if (branch.quota_used != actual) {
      ++report.quota_corrections;
      if (repair) {
        branch.quota_used = actual;
      }
    }
  });

  return report;
}

}  // namespace multics
