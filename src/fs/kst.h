// The known segment table (KST): per-process map between segment numbers and
// segment UIDs. This is the *common* (kernel) part left after Bratt's
// split [14]: the reference-name half of the old KST — names, search rules,
// pathname strings — moved to the user ring (src/userring/rnm.h), and what
// the kernel must still hold shrinks to this table. Experiment E3 measures
// that shrinkage.

#ifndef SRC_FS_KST_H_
#define SRC_FS_KST_H_

#include <unordered_map>

#include "src/base/result.h"
#include "src/fs/branch.h"
#include "src/hw/word.h"

namespace multics {

class KnownSegmentTable {
 public:
  // Segment numbers below `first` are reserved (kernel segments, stack...).
  explicit KnownSegmentTable(SegNo first = 64, SegNo last = kMaxSegments - 1)
      : first_(first), last_(last), next_(first) {}

  // Makes `uid` known, assigning a segment number. Idempotent: repeated
  // initiations of the same uid return the same number with a usage count
  // (Multics' initiate_count), so independently-written user code can
  // initiate and terminate the same segment without pulling the number out
  // from under each other.
  Result<SegNo> Assign(Uid uid);

  Result<Uid> UidOf(SegNo segno) const;
  Result<SegNo> SegNoOf(Uid uid) const;
  bool IsKnown(Uid uid) const { return by_uid_.contains(uid); }
  uint32_t UsageCount(SegNo segno) const;

  // Decrements the usage count; returns the remaining count (0 means the
  // entry is gone and the segment number free for reuse).
  Result<uint32_t> Release(SegNo segno);
  // Drops the entry regardless of count (process destruction).
  Status ForceRelease(SegNo segno);

  uint32_t size() const { return static_cast<uint32_t>(by_segno_.size()); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [segno, entry] : by_segno_) {
      fn(segno, entry.uid);
    }
  }

  // Approximate kernel-resident state, for the E3 size comparison.
  size_t KernelStateBytes() const {
    return by_segno_.size() * (sizeof(SegNo) + 2 * sizeof(Uid) + sizeof(uint32_t));
  }

 private:
  struct Entry {
    Uid uid = kInvalidUid;
    uint32_t usage = 0;
  };

  SegNo first_;
  SegNo last_;
  SegNo next_;
  std::unordered_map<SegNo, Entry> by_segno_;
  std::unordered_map<Uid, SegNo> by_uid_;
};

}  // namespace multics

#endif  // SRC_FS_KST_H_
