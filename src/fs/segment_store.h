// Layer 1 of the partitioned file system (the paper's first partitioning
// suggestion): "the bottom layer might implement a file system in which all
// segments were named by system generated unique identifiers." The segment
// store knows nothing of pathnames or directories-as-namespaces; it creates,
// activates, grows, and deletes segments identified by UID, maintains their
// branches, and enforces directory quotas by walking branch parent links.

#ifndef SRC_FS_SEGMENT_STORE_H_
#define SRC_FS_SEGMENT_STORE_H_

#include <functional>
#include <unordered_map>

#include "src/fs/branch.h"
#include "src/hw/machine.h"
#include "src/mem/active_segment.h"
#include "src/mem/page_control.h"

namespace multics {

class SegmentStore {
 public:
  SegmentStore(Machine* machine, ActiveSegmentTable* ast, PagingDevice* disk);

  // Page control is constructed after the store (it needs the same devices);
  // attach it before any activation.
  void AttachPageControl(PageControl* page_control) { page_control_ = page_control; }

  // Creates a branch (and nothing else: length 0, no storage yet).
  Result<Uid> Create(const SegmentAttributes& attrs, bool is_directory, Uid parent);

  // Destroys the segment: deactivates if needed, frees disk pages, uncharges
  // quota, removes the branch.
  Status Delete(Uid uid);

  Result<Branch*> Get(Uid uid);
  bool Exists(Uid uid) const { return branches_.contains(uid); }

  // Activation binds the segment into the AST (idempotent). Initiation
  // references are tracked separately with AddRef/DropRef: a referenced
  // segment may still be *deactivated* (its pages flushed, its AST slot
  // reclaimed, connected SDWs invalidated via the hook) — the next touch
  // takes a segment fault and reactivates it, exactly as Multics did.
  Result<ActiveSegment*> Activate(Uid uid, bool wired = false);

  void AddRef(Uid uid) { ++refs_[uid]; }
  Status DropRef(Uid uid);
  uint32_t RefCount(Uid uid) const;

  // Invoked just before a segment's AST entry is torn down, so the kernel
  // can invalidate descriptor-segment entries pointing at its page table.
  void SetDeactivateHook(std::function<void(Uid)> hook) { deactivate_hook_ = std::move(hook); }

  // Forces deactivation (flush + AST teardown + hook). Testing/trim entry.
  Status Deactivate(Uid uid);

  // Grows or shrinks the segment, charging / refunding quota against the
  // nearest ancestor directory that has one.
  Status SetLength(Uid uid, uint32_t pages);

  // Flushes and deactivates every zero-reference active segment (shutdown).
  Status DeactivateAll();

  uint32_t active_count() const { return ast_->size(); }
  uint64_t segment_count() const { return branches_.size(); }

  // Whole-catalog iteration, for the salvager and the backup daemon.
  template <typename Fn>
  void ForEachBranch(Fn&& fn) {
    for (auto& [uid, branch] : branches_) {
      fn(branch);
    }
  }

  ActiveSegmentTable* ast() const { return ast_; }
  Machine* machine() const { return machine_; }

 private:
  Status QuotaCharge(Uid parent, int64_t delta_pages);
  Status DeactivateNow(Uid uid);  // Flush + drop from AST + refresh disk_home.
  Status EvictOneInactive();      // Make AST room.
  Status FreePageStorage(ActiveSegment* seg, PageNo page);

  Machine* machine_;
  ActiveSegmentTable* ast_;
  PagingDevice* disk_;
  PageControl* page_control_ = nullptr;

  std::unordered_map<Uid, Branch> branches_;
  std::unordered_map<Uid, uint32_t> refs_;
  std::function<void(Uid)> deactivate_hook_;
  Uid next_uid_ = 1;
};

}  // namespace multics

#endif  // SRC_FS_SEGMENT_STORE_H_
