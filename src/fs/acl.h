// Access control lists, after Saltzer, "Protection and the Control of
// Sharing in Multics" (CACM 17,7 1974). A principal is person.project.tag;
// ACL entries may wildcard any component and are matched first-hit in order,
// most-specific first.

#ifndef SRC_FS_ACL_H_
#define SRC_FS_ACL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace multics {

struct Principal {
  std::string person;
  std::string project;
  std::string tag = "a";  // Interactive by default.

  std::string ToString() const { return person + "." + project + "." + tag; }
  bool operator==(const Principal&) const = default;

  static Result<Principal> Parse(const std::string& text);
};

// Segment access modes as a bitmask.
enum SegmentMode : uint8_t {
  kModeNull = 0,
  kModeRead = 1 << 0,
  kModeWrite = 1 << 1,
  kModeExecute = 1 << 2,
};

// Directory access modes.
enum DirMode : uint8_t {
  kDirNull = 0,
  kDirStatus = 1 << 0,  // List entries and read attributes.
  kDirModify = 1 << 1,  // Delete entries, change attributes/ACLs.
  kDirAppend = 1 << 2,  // Create new entries.
};

std::string SegmentModeString(uint8_t modes);  // e.g. "rw-" / "r-e"
std::string DirModeString(uint8_t modes);      // e.g. "sma"
Result<uint8_t> ParseSegmentModes(const std::string& text);

struct AclEntry {
  std::string person = "*";
  std::string project = "*";
  std::string tag = "*";
  uint8_t modes = kModeNull;

  bool Matches(const Principal& principal) const;
  bool operator==(const AclEntry&) const = default;
  std::string NamePart() const { return person + "." + project + "." + tag; }
  // Specificity: number of non-wildcard components, for match ordering.
  int Specificity() const;
};

class Acl {
 public:
  Acl() = default;

  // Adds or replaces the entry with the same person.project.tag.
  void Set(const AclEntry& entry);
  // Removes the entry whose name part matches exactly; kNotFound otherwise.
  Status Remove(const std::string& person, const std::string& project, const std::string& tag);

  // The modes granted to `principal`: first match in specificity order
  // (exact beats wildcard), as Multics resolved multiple applicable entries.
  uint8_t EffectiveModes(const Principal& principal) const;

  const std::vector<AclEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<AclEntry> entries_;  // Kept sorted by descending specificity.
};

}  // namespace multics

#endif  // SRC_FS_ACL_H_
