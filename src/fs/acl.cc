#include "src/fs/acl.h"

#include <algorithm>
#include <sstream>

namespace multics {

Result<Principal> Parse3(const std::string& text) {
  std::istringstream is(text);
  std::string person;
  std::string project;
  std::string tag;
  if (!std::getline(is, person, '.') || !std::getline(is, project, '.')) {
    return Status::kInvalidArgument;
  }
  if (!std::getline(is, tag, '.')) {
    tag = "a";
  }
  if (person.empty() || project.empty() || tag.empty()) {
    return Status::kInvalidArgument;
  }
  return Principal{person, project, tag};
}

Result<Principal> Principal::Parse(const std::string& text) { return Parse3(text); }

std::string SegmentModeString(uint8_t modes) {
  std::string out = "---";
  if (modes & kModeRead) {
    out[0] = 'r';
  }
  if (modes & kModeWrite) {
    out[1] = 'w';
  }
  if (modes & kModeExecute) {
    out[2] = 'e';
  }
  return out;
}

std::string DirModeString(uint8_t modes) {
  std::string out = "---";
  if (modes & kDirStatus) {
    out[0] = 's';
  }
  if (modes & kDirModify) {
    out[1] = 'm';
  }
  if (modes & kDirAppend) {
    out[2] = 'a';
  }
  return out;
}

Result<uint8_t> ParseSegmentModes(const std::string& text) {
  uint8_t modes = kModeNull;
  for (char c : text) {
    switch (c) {
      case 'r':
        modes |= kModeRead;
        break;
      case 'w':
        modes |= kModeWrite;
        break;
      case 'e':
        modes |= kModeExecute;
        break;
      case '-':
      case 'n':
        break;
      default:
        return Status::kInvalidArgument;
    }
  }
  return modes;
}

namespace {

bool ComponentMatches(const std::string& pattern, const std::string& value) {
  return pattern == "*" || pattern == value;
}

}  // namespace

bool AclEntry::Matches(const Principal& principal) const {
  return ComponentMatches(person, principal.person) &&
         ComponentMatches(project, principal.project) && ComponentMatches(tag, principal.tag);
}

int AclEntry::Specificity() const {
  return (person != "*" ? 4 : 0) + (project != "*" ? 2 : 0) + (tag != "*" ? 1 : 0);
}

void Acl::Set(const AclEntry& entry) {
  for (auto& existing : entries_) {
    if (existing.NamePart() == entry.NamePart()) {
      existing.modes = entry.modes;
      return;
    }
  }
  entries_.push_back(entry);
  std::stable_sort(entries_.begin(), entries_.end(), [](const AclEntry& a, const AclEntry& b) {
    return a.Specificity() > b.Specificity();
  });
}

Status Acl::Remove(const std::string& person, const std::string& project,
                   const std::string& tag) {
  const std::string name = person + "." + project + "." + tag;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->NamePart() == name) {
      entries_.erase(it);
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

uint8_t Acl::EffectiveModes(const Principal& principal) const {
  for (const AclEntry& entry : entries_) {
    if (entry.Matches(principal)) {
      return entry.modes;  // First (most specific) match wins, even if null.
    }
  }
  return kModeNull;
}

}  // namespace multics
