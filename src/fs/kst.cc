#include "src/fs/kst.h"

namespace multics {

Result<SegNo> KnownSegmentTable::Assign(Uid uid) {
  if (uid == kInvalidUid) {
    return Status::kInvalidArgument;
  }
  if (auto it = by_uid_.find(uid); it != by_uid_.end()) {
    ++by_segno_[it->second].usage;
    return it->second;
  }
  // Linear scan from the cursor; wraps once.
  for (SegNo probe = 0; probe <= last_ - first_; ++probe) {
    SegNo candidate = first_ + (next_ - first_ + probe) % (last_ - first_ + 1);
    if (!by_segno_.contains(candidate)) {
      by_segno_[candidate] = Entry{uid, 1};
      by_uid_[uid] = candidate;
      next_ = candidate + 1 > last_ ? first_ : candidate + 1;
      return candidate;
    }
  }
  return Status::kNoFreeSegmentNumbers;
}

Result<Uid> KnownSegmentTable::UidOf(SegNo segno) const {
  auto it = by_segno_.find(segno);
  if (it == by_segno_.end()) {
    return Status::kSegmentNotKnown;
  }
  return it->second.uid;
}

Result<SegNo> KnownSegmentTable::SegNoOf(Uid uid) const {
  auto it = by_uid_.find(uid);
  if (it == by_uid_.end()) {
    return Status::kSegmentNotKnown;
  }
  return it->second;
}

uint32_t KnownSegmentTable::UsageCount(SegNo segno) const {
  auto it = by_segno_.find(segno);
  return it == by_segno_.end() ? 0 : it->second.usage;
}

Result<uint32_t> KnownSegmentTable::Release(SegNo segno) {
  auto it = by_segno_.find(segno);
  if (it == by_segno_.end()) {
    return Status::kSegmentNotKnown;
  }
  if (--it->second.usage > 0) {
    return it->second.usage;
  }
  by_uid_.erase(it->second.uid);
  by_segno_.erase(it);
  return 0u;
}

Status KnownSegmentTable::ForceRelease(SegNo segno) {
  auto it = by_segno_.find(segno);
  if (it == by_segno_.end()) {
    return Status::kSegmentNotKnown;
  }
  by_uid_.erase(it->second.uid);
  by_segno_.erase(it);
  return Status::kOk;
}

}  // namespace multics
