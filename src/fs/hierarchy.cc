#include "src/fs/hierarchy.h"

#include <algorithm>

#include "src/base/log.h"

namespace multics {
namespace {

constexpr int kMaxLinkDepth = 8;

// Injection point: a crash in the middle of a multi-step directory update.
// The consult sits *between* the steps of a mutation, so a fault abandons
// the operation half-done and leaves the hierarchy torn exactly as a real
// mid-update system crash would — an orphaned branch, a dangling entry, or
// a lost name. No rollback is attempted on purpose: the salvager
// (src/fs/salvager.h) is the designated recovery path, and the torn state
// is what the crash-restart tests feed it.
Status ConsultTear(SegmentStore* store, const char* op, Uid uid) {
  Machine* machine = store->machine();
  if (machine == nullptr || machine->injector() == nullptr) {
    return Status::kOk;
  }
  InjectionDecision d = machine->ConsultInjector(InjectSite::kHierarchyUpdate, op, uid);
  return d.fault;
}

}  // namespace

// --- Directory -----------------------------------------------------------------

Status Directory::Add(DirEntry entry) {
  if (!ValidEntryName(entry.name)) {
    return Status::kInvalidArgument;
  }
  if (Find(entry.name) != nullptr) {
    return Status::kNameDuplication;
  }
  entries_.push_back(std::move(entry));
  return Status::kOk;
}

Status Directory::Remove(const std::string& name) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const DirEntry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return Status::kNotFound;
  }
  entries_.erase(it);
  return Status::kOk;
}

const DirEntry* Directory::Find(const std::string& name) const {
  for (const DirEntry& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

uint32_t Directory::NameCountFor(Uid uid) const {
  uint32_t count = 0;
  for (const DirEntry& entry : entries_) {
    if (!entry.is_link && entry.uid == uid) {
      ++count;
    }
  }
  return count;
}

// --- Hierarchy -----------------------------------------------------------------

Hierarchy::Hierarchy(SegmentStore* store) : store_(store) {}

Status Hierarchy::Init() {
  if (root_ != kInvalidUid) {
    return Status::kFailedPrecondition;
  }
  SegmentAttributes attrs;
  // Permissive root default; system initialization tightens it as policy
  // demands. (An all-null root would brick every unprivileged process.)
  attrs.acl.Set(AclEntry{"*", "*", "*", kDirStatus | kDirModify | kDirAppend});
  attrs.label = MlsLabel::SystemLow();
  attrs.author = Principal{"Initializer", "SysDaemon", "z"};
  MX_ASSIGN_OR_RETURN(root_, store_->Create(attrs, /*is_directory=*/true, kInvalidUid));
  directories_[root_] = Directory{};
  return Status::kOk;
}

Result<Directory*> Hierarchy::GetDir(Uid dir_uid) {
  auto it = directories_.find(dir_uid);
  if (it == directories_.end()) {
    if (!store_->Exists(dir_uid)) {
      return Status::kNoSuchDirectory;
    }
    return Status::kNotADirectory;
  }
  return &it->second;
}

Result<const Directory*> Hierarchy::GetDir(Uid dir_uid) const {
  auto it = directories_.find(dir_uid);
  if (it == directories_.end()) {
    if (!store_->Exists(dir_uid)) {
      return Status::kNoSuchDirectory;
    }
    return Status::kNotADirectory;
  }
  return &it->second;
}

Result<Uid> Hierarchy::CreateSegment(Uid dir_uid, const std::string& name,
                                     const SegmentAttributes& attrs) {
  // Each directory carries its own lock; mutations of distinct directories
  // proceed in parallel on the multiprocessor. The AST lock nests inside
  // (dir < ast in the certified hierarchy) when activation is involved.
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(Directory * dir, GetDir(dir_uid));
  if (dir->Find(name) != nullptr) {
    return Status::kNameDuplication;
  }
  MX_ASSIGN_OR_RETURN(Uid uid, store_->Create(attrs, /*is_directory=*/false, dir_uid));
  MX_RETURN_IF_ERROR(ConsultTear(store_, "create_segment", uid));
  Status st = dir->Add(DirEntry{name, uid, false, {}});
  if (st != Status::kOk) {
    (void)store_->Delete(uid);
    return st;
  }
  return uid;
}

Result<Uid> Hierarchy::CreateDirectory(Uid dir_uid, const std::string& name,
                                       const SegmentAttributes& attrs, uint32_t quota_pages) {
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(Directory * dir, GetDir(dir_uid));
  if (dir->Find(name) != nullptr) {
    return Status::kNameDuplication;
  }
  MX_ASSIGN_OR_RETURN(Uid uid, store_->Create(attrs, /*is_directory=*/true, dir_uid));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_->Get(uid));
  branch->quota_pages = quota_pages;
  MX_RETURN_IF_ERROR(ConsultTear(store_, "create_directory", uid));
  Status st = dir->Add(DirEntry{name, uid, false, {}});
  if (st != Status::kOk) {
    (void)store_->Delete(uid);
    return st;
  }
  directories_[uid] = Directory{};
  return uid;
}

Status Hierarchy::CreateLink(Uid dir_uid, const std::string& name,
                             const std::string& target_path) {
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(Directory * dir, GetDir(dir_uid));
  auto parsed = Path::Parse(target_path);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return dir->Add(DirEntry{name, kInvalidUid, true, target_path});
}

Status Hierarchy::DeleteEntry(Uid dir_uid, const std::string& name) {
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(Directory * dir, GetDir(dir_uid));
  const DirEntry* entry = dir->Find(name);
  if (entry == nullptr) {
    return Status::kNotFound;
  }
  if (entry->is_link) {
    return dir->Remove(name);
  }

  Uid uid = entry->uid;
  MX_ASSIGN_OR_RETURN(Branch * branch, store_->Get(uid));

  if (dir->NameCountFor(uid) > 1) {
    return dir->Remove(name);  // Just drop one of several names.
  }

  if (branch->is_directory) {
    auto target = GetDir(uid);
    if (!target.ok()) {
      return target.status();
    }
    if (!target.value()->empty()) {
      return Status::kDirectoryNotEmpty;
    }
    MX_RETURN_IF_ERROR(store_->Delete(uid));
    MX_RETURN_IF_ERROR(ConsultTear(store_, "delete_entry", uid));
    directories_.erase(uid);
    return dir->Remove(name);
  }

  MX_RETURN_IF_ERROR(store_->Delete(uid));
  MX_RETURN_IF_ERROR(ConsultTear(store_, "delete_entry", uid));
  return dir->Remove(name);
}

Status Hierarchy::AddName(Uid dir_uid, const std::string& existing,
                          const std::string& additional) {
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(Directory * dir, GetDir(dir_uid));
  const DirEntry* entry = dir->Find(existing);
  if (entry == nullptr) {
    return Status::kNotFound;
  }
  if (entry->is_link) {
    return Status::kInvalidArgument;
  }
  return dir->Add(DirEntry{additional, entry->uid, false, {}});
}

Status Hierarchy::Rename(Uid dir_uid, const std::string& from, const std::string& to) {
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(Directory * dir, GetDir(dir_uid));
  const DirEntry* entry = dir->Find(from);
  if (entry == nullptr) {
    return Status::kNotFound;
  }
  if (dir->Find(to) != nullptr) {
    return Status::kNameDuplication;
  }
  DirEntry copy = *entry;
  copy.name = to;
  MX_RETURN_IF_ERROR(dir->Remove(from));
  MX_RETURN_IF_ERROR(ConsultTear(store_, "rename", copy.uid));
  return dir->Add(std::move(copy));
}

Result<DirEntry> Hierarchy::Lookup(Uid dir_uid, const std::string& name) const {
  // Readers take the directory lock too (the original kernel had no
  // reader/writer distinction on directories); path resolution locks each
  // component in turn, never two at once.
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(const Directory* dir, GetDir(dir_uid));
  const DirEntry* entry = dir->Find(name);
  if (entry == nullptr) {
    return Status::kNotFound;
  }
  return *entry;
}

Result<Uid> Hierarchy::ResolvePath(const Path& path) const {
  return ResolveWithDepth(path, kMaxLinkDepth);
}

Result<Uid> Hierarchy::ResolveWithDepth(const Path& path, int depth) const {
  if (depth <= 0) {
    return Status::kLinkageFault;
  }
  Uid current = root_;
  for (size_t i = 0; i < path.components.size(); ++i) {
    MX_ASSIGN_OR_RETURN(DirEntry entry, Lookup(current, path.components[i]));
    if (entry.is_link) {
      // Splice the link target in front of the remaining components.
      MX_ASSIGN_OR_RETURN(Path target, Path::Parse(entry.link_target));
      for (size_t j = i + 1; j < path.components.size(); ++j) {
        target.components.push_back(path.components[j]);
      }
      return ResolveWithDepth(target, depth - 1);
    }
    current = entry.uid;
  }
  return current;
}

Result<std::vector<DirEntry>> Hierarchy::List(Uid dir_uid) const {
  LockGuard dir_lock(store_->machine()->locks().Dir(dir_uid));
  MX_ASSIGN_OR_RETURN(const Directory* dir, GetDir(dir_uid));
  return dir->entries();
}

Result<Path> Hierarchy::PathOf(Uid uid) const {
  if (uid == root_) {
    return Path{};
  }
  std::vector<std::string> reversed;
  Uid current = uid;
  for (int depth = 0; depth < 64; ++depth) {
    auto branch = const_cast<SegmentStore*>(store_)->Get(current);
    if (!branch.ok()) {
      return branch.status();
    }
    Uid parent = branch.value()->parent;
    if (parent == kInvalidUid) {
      break;
    }
    MX_ASSIGN_OR_RETURN(const Directory* dir, GetDir(parent));
    std::string found;
    for (const DirEntry& entry : dir->entries()) {
      if (!entry.is_link && entry.uid == current) {
        found = entry.name;
        break;
      }
    }
    if (found.empty()) {
      return Status::kNotFound;
    }
    reversed.push_back(found);
    current = parent;
    if (current == root_) {
      break;
    }
  }
  Path path;
  path.components.assign(reversed.rbegin(), reversed.rend());
  return path;
}

}  // namespace multics
