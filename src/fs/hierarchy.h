// Layer 2 of the partitioned file system: the naming hierarchy built on top
// of the UID-named segment store. Directories map entrynames (and links) to
// UIDs; a branch's attributes live with its UID in the store. The directory
// structures themselves stay protected inside the supervisor — the paper is
// explicit that removing pathname *resolution* from the kernel (experiment
// E3) does not expose the hierarchy itself.

#ifndef SRC_FS_HIERARCHY_H_
#define SRC_FS_HIERARCHY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/fs/pathname.h"
#include "src/fs/segment_store.h"

namespace multics {

struct DirEntry {
  std::string name;
  Uid uid = kInvalidUid;     // Target branch when not a link.
  bool is_link = false;
  std::string link_target;   // Absolute pathname text when is_link.
};

class Directory {
 public:
  Status Add(DirEntry entry);
  Status Remove(const std::string& name);
  const DirEntry* Find(const std::string& name) const;

  // Number of entry names referring to `uid`.
  uint32_t NameCountFor(Uid uid) const;

  bool empty() const { return entries_.empty(); }
  const std::vector<DirEntry>& entries() const { return entries_; }

 private:
  std::vector<DirEntry> entries_;
};

class Hierarchy {
 public:
  // The salvager repairs private structures directly.
  friend class Salvager;

  explicit Hierarchy(SegmentStore* store);

  // Creates the root directory. Must be called exactly once.
  Status Init();
  Uid root() const { return root_; }

  // Name-space operations. These are raw mechanisms; access control is the
  // reference monitor's job at the gate layer above.
  Result<Uid> CreateSegment(Uid dir_uid, const std::string& name,
                            const SegmentAttributes& attrs);
  Result<Uid> CreateDirectory(Uid dir_uid, const std::string& name,
                              const SegmentAttributes& attrs, uint32_t quota_pages = 0);
  Status CreateLink(Uid dir_uid, const std::string& name, const std::string& target_path);

  // Deletes the entry `name`: removes a link, deletes a segment, or deletes
  // an empty directory. A branch with remaining additional names only loses
  // this name.
  Status DeleteEntry(Uid dir_uid, const std::string& name);

  // Additional-name management (Multics chname).
  Status AddName(Uid dir_uid, const std::string& existing, const std::string& additional);
  Status Rename(Uid dir_uid, const std::string& from, const std::string& to);

  // Looks `name` up in one directory; does not follow links.
  Result<DirEntry> Lookup(Uid dir_uid, const std::string& name) const;

  // Full pathname resolution with link following. This is the algorithm the
  // kernelized configuration evicts from ring 0 (the user-ring initiator
  // re-implements it by iterating the per-directory kernel interface).
  Result<Uid> ResolvePath(const Path& path) const;

  Result<std::vector<DirEntry>> List(Uid dir_uid) const;

  // Raw directory access, bypassing all checks: for the salvager, the
  // backup daemon's repair path, and fault-injection tests. Not a user path.
  Result<Directory*> RawDirectory(Uid dir_uid) { return GetDir(dir_uid); }

  // Reverse lookup: the (first) pathname of a branch, by walking parents.
  Result<Path> PathOf(Uid uid) const;

  SegmentStore* store() const { return store_; }

 private:
  Result<Directory*> GetDir(Uid dir_uid);
  Result<const Directory*> GetDir(Uid dir_uid) const;
  Result<Uid> ResolveWithDepth(const Path& path, int depth) const;

  SegmentStore* store_;
  Uid root_ = kInvalidUid;
  std::unordered_map<Uid, Directory> directories_;
};

}  // namespace multics

#endif  // SRC_FS_HIERARCHY_H_
