// Branches: the per-segment metadata record the storage system keeps — ACL,
// MLS label, ring brackets, gate attributes, length, and the disk page map
// used while the segment is inactive. The branch is the object the security
// kernel's reference monitor consults; user rings never touch one directly.

#ifndef SRC_FS_BRANCH_H_
#define SRC_FS_BRANCH_H_

#include <cstdint>
#include <vector>

#include "src/fs/acl.h"
#include "src/hw/ring.h"
#include "src/mem/paging_device.h"
#include "src/mls/label.h"

namespace multics {

using Uid = uint64_t;
inline constexpr Uid kInvalidUid = 0;

struct Branch {
  Uid uid = kInvalidUid;
  Uid parent = kInvalidUid;    // Containing directory (kInvalidUid for root).
  bool is_directory = false;

  uint32_t pages = 0;          // Current length.
  uint32_t max_pages = kMaxSegmentPages;

  Acl acl;
  MlsLabel label;
  RingBrackets brackets = UserBrackets();
  bool gate = false;
  uint32_t gate_entries = 0;

  Principal author;
  Cycles date_created = 0;
  Cycles date_modified = 0;

  // Disk addresses of each page while the segment is inactive
  // (kInvalidDevAddr = zero page). Meaningless while active.
  std::vector<DevAddr> disk_home;

  // Directory quota: maximum pages chargeable below this directory.
  // 0 means "no quota here; charge the nearest ancestor with one".
  uint32_t quota_pages = 0;
  uint32_t quota_used = 0;
};

// Attributes supplied at creation time.
struct SegmentAttributes {
  uint32_t max_pages = kMaxSegmentPages;
  Acl acl;
  MlsLabel label;
  RingBrackets brackets = UserBrackets();
  bool gate = false;
  uint32_t gate_entries = 0;
  Principal author;
};

}  // namespace multics

#endif  // SRC_FS_BRANCH_H_
