// Multics pathnames: ">" separates components and the empty path names the
// root, e.g. ">udd>Project>user>prog". Path resolution itself lives in the
// hierarchy (legacy configuration) or in the user ring (kernelized
// configuration, experiment E3); this header is just the syntax.

#ifndef SRC_FS_PATHNAME_H_
#define SRC_FS_PATHNAME_H_

#include <string>
#include <vector>

#include "src/base/result.h"

namespace multics {

inline constexpr size_t kMaxNameLength = 32;
inline constexpr size_t kMaxPathComponents = 16;

// True for a legal entryname: 1..32 chars, no '>' or '<', not "." or "..".
bool ValidEntryName(const std::string& name);

struct Path {
  std::vector<std::string> components;  // Empty means the root.

  bool IsRoot() const { return components.empty(); }
  std::string ToString() const;
  std::string Leaf() const { return components.empty() ? "" : components.back(); }
  Path Parent() const;
  Path Child(const std::string& name) const;

  static Result<Path> Parse(const std::string& text);

  bool operator==(const Path&) const = default;
};

}  // namespace multics

#endif  // SRC_FS_PATHNAME_H_
