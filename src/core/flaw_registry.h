// The review activity: "A list of all known Multics security flaws is
// maintained. Each flaw reported is analyzed to determine how it happened,
// how it can be fixed, and how similar flaws can be avoided in the security
// kernel being developed."
//
// The registry tracks flaw reports with Linde-style classifications; the
// built-in catalog seeds it with the flaw patterns the paper and its
// references discuss, tied to the modules of this reproduction that embody
// (or repair) them.

#ifndef SRC_CORE_FLAW_REGISTRY_H_
#define SRC_CORE_FLAW_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace multics {

enum class FlawClass {
  kUncheckedArgument,   // Supervisor trusts user-constructed data (the linker!).
  kMissingCheck,        // An access path skips the reference monitor.
  kRaceCondition,       // TOCTOU between check and use.
  kDefaultPermissive,   // Fail-open defaults.
  kStateConfusion,      // Shared mechanism state leaks between computations.
  kResourceExhaustion,  // Denial of use via unbounded allocation.
};

const char* FlawClassName(FlawClass flaw_class);

struct FlawReport {
  uint32_t id = 0;
  std::string title;
  FlawClass flaw_class = FlawClass::kMissingCheck;
  std::string module;        // Where in this codebase the pattern lives.
  std::string how_exploited; // What a malicious user could do.
  std::string repair;        // How the kernelized design removes it.
  bool repaired = false;
};

class FlawRegistry {
 public:
  uint32_t Add(FlawReport report);  // Returns the assigned id.
  Status MarkRepaired(uint32_t id);

  uint32_t total() const { return static_cast<uint32_t>(reports_.size()); }
  uint32_t open_count() const;
  uint32_t CountByClass(FlawClass flaw_class) const;
  const std::vector<FlawReport>& reports() const { return reports_; }

 private:
  std::vector<FlawReport> reports_;
  uint32_t next_id_ = 1;
};

// The seed catalog: flaw patterns from the paper's review activity mapped to
// this reproduction.
std::vector<FlawReport> BuiltinFlawCatalog();

}  // namespace multics

#endif  // SRC_CORE_FLAW_REGISTRY_H_
