#include "src/core/audit.h"

namespace multics {

void AuditLog::Record(Cycles time, const std::string& principal, const std::string& operation,
                      Uid uid, Status outcome) {
  recent_.push_back(AuditRecord{time, principal, operation, uid, outcome});
  if (recent_.size() > keep_recent_) {
    recent_.pop_front();
  }
  if (outcome == Status::kOk) {
    ++grants_;
    return;
  }
  ++denials_;
  ++denials_by_status_[static_cast<int32_t>(outcome)];
  switch (outcome) {
    case Status::kMlsReadViolation:
    case Status::kMlsWriteViolation:
      ++mls_denials_;
      break;
    case Status::kAccessDenied:
      ++acl_denials_;
      break;
    case Status::kRingViolation:
    case Status::kNotAGate:
      ++ring_denials_;
      break;
    default:
      break;
  }
}

uint64_t AuditLog::denials_with(Status status) const {
  auto it = denials_by_status_.find(static_cast<int32_t>(status));
  return it == denials_by_status_.end() ? 0 : it->second;
}

void AuditLog::Clear() {
  recent_.clear();
  grants_ = 0;
  denials_ = 0;
  mls_denials_ = 0;
  acl_denials_ = 0;
  ring_denials_ = 0;
  denials_by_status_.clear();
}

}  // namespace multics
