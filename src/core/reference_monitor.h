// The reference monitor: the single place where an access request (principal,
// clearance, wanted modes) meets an object's protection attributes (ACL, MLS
// label, ring brackets). The effective modes it computes are baked into the
// SDW at initiation time, so the simulated hardware enforces the decision on
// every subsequent reference — exactly the Multics division of labour.
//
// The Mitre-model compartment checks sit at the bottom (layered kernel,
// paper's first partitioning suggestion): an ACL can only ever *restrict*
// what the lattice allows, never widen it.

#ifndef SRC_CORE_REFERENCE_MONITOR_H_
#define SRC_CORE_REFERENCE_MONITOR_H_

#include "src/core/audit.h"
#include "src/fs/branch.h"
#include "src/hw/sdw.h"
#include "src/mls/label.h"

namespace multics {

class ReferenceMonitor {
 public:
  ReferenceMonitor(AuditLog* audit, bool mls_enforcement)
      : audit_(audit), mls_(mls_enforcement) {}

  bool mls_enforced() const { return mls_; }

  // Effective segment modes: ACL grant intersected with what the lattice
  // permits for this (clearance, label) pair. A trusted subject (ring <= 1:
  // the kernel's own daemons and system services) is exempt from the lattice
  // restrictions — the Bell-LaPadula trusted-subject notion — but never from
  // the ACL.
  uint8_t SegmentModes(const Branch& branch, const Principal& principal,
                       const MlsLabel& clearance, bool trusted = false);

  // Effective directory modes (status ~ observe, modify/append ~ alter).
  uint8_t DirectoryModes(const Branch& branch, const Principal& principal,
                         const MlsLabel& clearance, bool trusted = false);

  // Checks that every bit of `wanted` is granted; audits the decision.
  // The returned status distinguishes ACL denials from lattice denials so
  // the audit trail shows *why* (and tests can assert on the reason).
  Status RequireSegment(const Branch& branch, const Principal& principal,
                        const MlsLabel& clearance, uint8_t wanted, const char* operation,
                        Cycles now, bool trusted = false);
  Status RequireDirectory(const Branch& branch, const Principal& principal,
                          const MlsLabel& clearance, uint8_t wanted, const char* operation,
                          Cycles now, bool trusted = false);

  // Builds the hardware descriptor embodying the decision.
  SegmentDescriptor BuildSdw(const Branch& branch, uint8_t granted_modes,
                             PageTable* page_table) const;

  uint64_t checks() const { return checks_; }

 private:
  AuditLog* audit_;
  bool mls_;
  // Deliberately not `mutable`: a counter mutated from const methods is
  // invisible kernel state, and on the multiprocessor it would be an
  // unlocked write hiding behind a const façade. mx_lint enforces this.
  uint64_t checks_ = 0;
};

}  // namespace multics

#endif  // SRC_CORE_REFERENCE_MONITOR_H_
