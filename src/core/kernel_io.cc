// IPC, device-I/O, and network gates.
//
// IPC: "the proposed new base-level interprocess communication facility has
// the property that its use can be controlled with the standard memory
// protection mechanisms of the kernel" — every channel is guarded by a
// segment; wakeup needs write access to the guard, blocking needs read.
//
// Device I/O: the legacy per-device stacks (E12); the kernelized
// configuration has only the network gates.

#include "src/core/kernel.h"

namespace multics {

// --- IPC gates ----------------------------------------------------------------------

Result<ChannelId> Kernel::IpcCreateChannel(Process& caller, SegNo guard_segno) {
  MX_ENTER_GATE(caller, "ipc_create_channel", 4);
  MX_ASSIGN_OR_RETURN(Uid guard_uid, ResolveDirSegno(caller, guard_segno));
  MX_ASSIGN_OR_RETURN(Branch * guard, store_.Get(guard_uid));
  // Creating a channel on a guard requires write access to the guard.
  MX_RETURN_IF_ERROR(monitor_.RequireSegment(*guard, caller.principal(), caller.clearance(),
                                             kModeWrite, "ipc_create_channel",
                                             machine_.clock().now(), Trusted(caller)));
  return traffic_.channels().Create(caller.pid(), guard_uid);
}

Status Kernel::IpcDestroyChannel(Process& caller, ChannelId channel) {
  MX_ENTER_GATE(caller, "ipc_destroy_channel", 4);
  auto owner = traffic_.channels().OwnerOf(channel);
  if (!owner.ok()) {
    return owner.status();
  }
  if (owner.value() != caller.pid() && caller.ring() > kRingSupervisor) {
    return Status::kAccessDenied;
  }
  return traffic_.channels().Destroy(channel);
}

Status Kernel::IpcWakeup(Process& caller, ChannelId channel, uint64_t data) {
  MX_ENTER_GATE(caller, "ipc_wakeup", 4);
  auto guard_uid = traffic_.channels().GuardOf(channel);
  if (!guard_uid.ok()) {
    return guard_uid.status();
  }
  if (guard_uid.value() != 0) {
    MX_ASSIGN_OR_RETURN(Branch * guard, store_.Get(guard_uid.value()));
    MX_RETURN_IF_ERROR(monitor_.RequireSegment(*guard, caller.principal(), caller.clearance(),
                                               kModeWrite, "ipc_wakeup",
                                               machine_.clock().now(), Trusted(caller)));
  }
  return traffic_.Wakeup(channel, EventMessage{data, caller.pid()});
}

Result<bool> Kernel::IpcAwait(Process& caller, TaskContext& ctx, ChannelId channel) {
  MX_ENTER_GATE(caller, "ipc_block", 4);
  auto guard_uid = traffic_.channels().GuardOf(channel);
  if (!guard_uid.ok()) {
    return guard_uid.status();
  }
  if (guard_uid.value() != 0) {
    MX_ASSIGN_OR_RETURN(Branch * guard, store_.Get(guard_uid.value()));
    MX_RETURN_IF_ERROR(monitor_.RequireSegment(*guard, caller.principal(), caller.clearance(),
                                               kModeRead, "ipc_block", machine_.clock().now(), Trusted(caller)));
  }
  return ctx.Await(channel);
}

Result<uint64_t> Kernel::IpcChannelStatus(Process& caller, ChannelId channel) {
  MX_ENTER_GATE(caller, "ipc_channel_status", 2);
  auto guard_uid = traffic_.channels().GuardOf(channel);
  if (!guard_uid.ok()) {
    return guard_uid.status();
  }
  if (guard_uid.value() != 0) {
    MX_ASSIGN_OR_RETURN(Branch * guard, store_.Get(guard_uid.value()));
    MX_RETURN_IF_ERROR(monitor_.RequireSegment(*guard, caller.principal(), caller.clearance(),
                                               kModeRead, "ipc_channel_status",
                                               machine_.clock().now(), Trusted(caller)));
  }
  return traffic_.channels().QueueLength(channel);
}

// --- Device I/O gates (legacy) ----------------------------------------------------------

Result<std::string> Kernel::TtyRead(Process& caller, uint32_t line) {
  MX_ENTER_GATE(caller, "tty_read", 4);
  if (line >= ttys_.size()) {
    return Status::kDeviceError;
  }
  return ttys_[line]->ReadLine();
}

Status Kernel::TtyWrite(Process& caller, uint32_t line, const std::string& text) {
  MX_ENTER_GATE(caller, "tty_write", 8);
  if (line >= ttys_.size()) {
    return Status::kDeviceError;
  }
  return ttys_[line]->WriteString(text);
}

Result<std::string> Kernel::CardRead(Process& caller) {
  MX_ENTER_GATE(caller, "card_read", 2);
  if (card_reader_ == nullptr) {
    return Status::kDeviceError;
  }
  return card_reader_->ReadCard();
}

Status Kernel::PrinterWrite(Process& caller, const std::string& line) {
  MX_ENTER_GATE(caller, "printer_write", 8);
  if (printer_ == nullptr) {
    return Status::kDeviceError;
  }
  return printer_->PrintLine(line);
}

Status Kernel::PrinterEject(Process& caller) {
  MX_ENTER_GATE(caller, "printer_eject", 2);
  if (printer_ == nullptr) {
    return Status::kDeviceError;
  }
  return printer_->EjectPage();
}

Result<std::string> Kernel::TapeRead(Process& caller) {
  MX_ENTER_GATE(caller, "tape_read", 2);
  if (tape_ == nullptr) {
    return Status::kDeviceError;
  }
  return tape_->ReadRecord();
}

Status Kernel::TapeWrite(Process& caller, const std::string& record) {
  MX_ENTER_GATE(caller, "tape_write", 8);
  if (tape_ == nullptr) {
    return Status::kDeviceError;
  }
  return tape_->WriteRecord(record);
}

Status Kernel::TapeRewind(Process& caller) {
  MX_ENTER_GATE(caller, "tape_rewind", 2);
  if (tape_ == nullptr) {
    return Status::kDeviceError;
  }
  return tape_->Rewind();
}

Status Kernel::TapeSkip(Process& caller, uint32_t records) {
  MX_ENTER_GATE(caller, "tape_skip", 2);
  if (tape_ == nullptr) {
    return Status::kDeviceError;
  }
  return tape_->SkipRecords(records);
}

// --- Network gates -----------------------------------------------------------------------

Result<ConnId> Kernel::NetOpen(Process& caller, const std::string& remote) {
  MX_ENTER_GATE(caller, "net_open", 6);
  std::unique_ptr<InputBuffer> buffer;
  if (params_.config.infinite_net_buffers) {
    // The VM-backed infinite buffer: backing store grows page-by-page
    // through a real segment under >system, subject to its max length.
    auto system = hierarchy_.Lookup(hierarchy_.root(), "system");
    Uid system_uid = kInvalidUid;
    if (system.ok()) {
      system_uid = system->uid;
    } else {
      SegmentAttributes attrs;
      attrs.acl.Set(AclEntry{"*", "SysDaemon", "*", kModeRead | kModeWrite});
      attrs.author = Principal{"Network", "SysDaemon", "z"};
      MX_ASSIGN_OR_RETURN(system_uid,
                          hierarchy_.CreateDirectory(hierarchy_.root(), "system", attrs));
    }
    SegmentAttributes attrs;
    attrs.max_pages = params_.net_buffer_max_pages;
    attrs.acl.Set(AclEntry{"*", "SysDaemon", "*", kModeRead | kModeWrite});
    attrs.author = Principal{"Network", "SysDaemon", "z"};
    MX_ASSIGN_OR_RETURN(
        Uid buffer_uid,
        hierarchy_.CreateSegment(
            system_uid, "net_q_" + std::to_string(store_.segment_count()) + "_" + remote,
            attrs));
    buffer = std::make_unique<InfiniteBuffer>(
        [this, buffer_uid](uint32_t pages) { return store_.SetLength(buffer_uid, pages); });
  } else {
    buffer = std::make_unique<CircularBuffer>(params_.circular_buffer_words);
  }
  return network_.Open(remote, std::move(buffer));
}

Status Kernel::NetClose(Process& caller, ConnId conn) {
  MX_ENTER_GATE(caller, "net_close", 2);
  return network_.Close(conn);
}

Status Kernel::NetWrite(Process& caller, ConnId conn, const std::string& data) {
  MX_ENTER_GATE(caller, "net_write", 8);
  return network_.Send(conn, data);
}

Result<std::string> Kernel::NetRead(Process& caller, ConnId conn) {
  MX_ENTER_GATE(caller, "net_read", 4);
  auto message = network_.Receive(conn);
  if (!message.ok()) {
    return message.status();
  }
  return message->data;
}

Result<uint64_t> Kernel::NetStatus(Process& caller, ConnId conn) {
  MX_ENTER_GATE(caller, "net_status", 2);
  MX_ASSIGN_OR_RETURN(const InputBuffer* buffer, network_.BufferOf(conn));
  return static_cast<uint64_t>(buffer->queued());
}

}  // namespace multics
