// The security kernel: "a minimal, protected central core of software whose
// correct operation is necessary and sufficient to guarantee enforcement
// within a system of the security model."
//
// The Kernel owns the substrates (machine, memory hierarchy, storage system,
// processes, network) and exposes the supervisor's user-callable surface as
// *gates*. Which gates exist depends on the KernelConfiguration: the legacy
// configurations include the dynamic linker, reference-name management,
// pathname addressing, and per-device I/O inside the kernel; the kernelized
// configuration removes them (they become user-ring libraries in
// src/userring/), shrinking the gate table — the very effect experiments
// E1/E3/E12 measure.
//
// Every gate entry charges the configured ring-crossing cost (hardware 6180
// vs software 645 — E2), records the call in the gate table, and routes all
// access decisions through the reference monitor.

#ifndef SRC_CORE_KERNEL_H_
#define SRC_CORE_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/audit.h"
#include "src/core/config.h"
#include "src/core/flaw_registry.h"
#include "src/core/gate.h"
#include "src/core/reference_monitor.h"
#include "src/fs/hierarchy.h"
#include "src/fs/kst.h"
#include "src/fs/segment_store.h"
#include "src/hw/processor.h"
#include "src/link/linker.h"
#include "src/mem/page_control_parallel.h"
#include "src/mem/page_control_sequential.h"
#include "src/meter/host_profile.h"
#include "src/net/device_io.h"
#include "src/net/network.h"
#include "src/proc/traffic_controller.h"

namespace multics {

struct KernelParams {
  MachineConfig machine{.core_frames = 256, .interrupt_lines = 32,
                        .ring_mode = RingMode::kHardware6180, .costs = DefaultCostModel()};
  uint32_t bulk_pages = 512;
  uint32_t disk_pages = 32768;
  uint32_t ast_capacity = 128;
  uint32_t virtual_processors = 16;
  std::string replacement_policy = "clock";
  uint32_t circular_buffer_words = 2048;  // Legacy network input buffers.
  uint32_t net_buffer_max_pages = 64;     // Infinite-buffer segment limit.
  ParallelPageControlConfig parallel_page_control{};
  KernelConfiguration config = KernelConfiguration::Kernelized6180();
};

// What Initiate reports back: either a segment number, or "this entry is a
// link — chase it yourself" (the kernelized design pushes link chasing to
// the user ring).
struct InitiateResult {
  SegNo segno = kInvalidSegNo;
  bool is_link = false;
  std::string link_target;
  bool is_directory = false;
  uint8_t granted_modes = 0;
};

struct BranchStatus {
  Uid uid = kInvalidUid;
  bool is_directory = false;
  uint32_t pages = 0;
  std::string mode_string;
  std::string label;
  std::string author;
  uint32_t names = 0;
};

class Kernel {
 public:
  explicit Kernel(const KernelParams& params);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Bell-LaPadula trusted subjects: the kernel's own services (ring <= 1).
  static bool Trusted(const Process& process) { return process.ring() <= kRingSupervisor; }

  // --- Subsystem access ---------------------------------------------------
  Machine& machine() { return machine_; }
  const KernelConfiguration& config() const { return params_.config; }
  const KernelParams& params() const { return params_; }
  GateTable& gates() { return gates_; }
  AuditLog& audit() { return audit_; }
  ReferenceMonitor& monitor() { return monitor_; }
  SegmentStore& store() { return store_; }
  Hierarchy& hierarchy() { return hierarchy_; }
  PageControl& page_control() { return *page_control_; }
  TrafficController& traffic() { return traffic_; }
  NetworkAttachment& network() { return network_; }
  FlawRegistry& flaws() { return flaws_; }
  // The active CPU's processor. On a multiprocessor the binding follows the
  // traffic controller's dispatch decision; RunAs binds the process to
  // whichever CPU is active when it runs.
  Processor& cpu() { return machine_.active_processor(); }
  // Paging devices, exposed for fault-injection observability (retry /
  // failed-transfer counters) in tests and benches.
  PagingDevice& bulk_store() { return bulk_; }
  PagingDevice& disk() { return disk_; }

  // Ring-0 faults taken while kernel code chewed on user input (E10): in a
  // real system each of these is a crash or worse.
  uint64_t kernel_faults() const { return kernel_faults_; }

  // --- Process management --------------------------------------------------
  // Creates the initial processes at boot (no caller, no gate).
  Result<Process*> BootstrapProcess(const std::string& name, const Principal& principal,
                                    const MlsLabel& clearance,
                                    std::unique_ptr<Task> program = nullptr);
  // Gate: proc_create. The child inherits the caller's principal unless the
  // caller runs in ring <= 1 (privileged services may name any principal).
  Result<Process*> ProcCreate(Process& caller, const std::string& name,
                              const Principal& principal, const MlsLabel& clearance,
                              std::unique_ptr<Task> program);
  Status ProcDestroy(Process& caller, ProcessId pid);
  Result<std::string> ProcGetInfo(Process& caller, ProcessId pid);
  // proc_metering: the caller's own resource consumption.
  Result<std::string> ProcMetering(Process& caller);

  // Binds the simulated CPU to a process (address space, ring, fault sink).
  Status RunAs(Process& process);
  Process* current() const { return current_; }

  // --- Gates: segment-number address space (the kernelized core) ----------
  Result<SegNo> RootDir(Process& caller);
  Result<InitiateResult> Initiate(Process& caller, SegNo dir_segno, const std::string& name);
  Status Terminate(Process& caller, SegNo segno);
  Result<uint32_t> SegGetLength(Process& caller, SegNo segno);  // In pages.
  Status SegSetLength(Process& caller, SegNo segno, uint32_t pages);
  Result<BranchStatus> FsStatus(Process& caller, SegNo dir_segno, const std::string& name);
  // kst_status: the list of (segno, uid) pairs this process knows.
  Result<std::vector<std::pair<SegNo, Uid>>> KstStatus(Process& caller);

  // Ring-0 word access used by the in-kernel linker and system
  // initialization: bypasses ring brackets and permission bits (it *is* the
  // kernel) but not bounds.
  Result<Word> KernelReadWord(Process& process, SegNo segno, WordOffset offset);
  Status KernelWriteWord(Process& process, SegNo segno, WordOffset offset, Word value);

  // --- Gates: pathname addressing (legacy only; E3) ------------------------
  Result<SegNo> InitiatePath(Process& caller, const std::string& path);
  // initiate_count_path: initiate and report how many segments are known.
  Result<std::pair<SegNo, uint32_t>> InitiateCountPath(Process& caller, const std::string& path);
  Status TerminatePath(Process& caller, const std::string& path);
  // terminate_file_path: terminate and drop every reference name for it.
  Status TerminateFilePath(Process& caller, const std::string& path);
  Result<BranchStatus> FsStatusPath(Process& caller, const std::string& path);
  Result<SegNo> CreateSegmentPath(Process& caller, const std::string& path,
                                  const SegmentAttributes& attrs);
  Status DeletePath(Process& caller, const std::string& path);
  Result<std::vector<std::string>> ListPath(Process& caller, const std::string& path);
  Status SetAclPath(Process& caller, const std::string& path, const AclEntry& entry);
  Status ChnamePath(Process& caller, const std::string& path, const std::string& new_name);
  Result<uint32_t> QuotaReadPath(Process& caller, const std::string& path);

  // --- Gates: reference names & search (legacy only; E3) -------------------
  Status NameBind(Process& caller, const std::string& refname, SegNo segno);
  Result<SegNo> NameLookup(Process& caller, const std::string& refname);
  Status NameUnbind(Process& caller, const std::string& refname);
  Result<std::vector<std::string>> NameList(Process& caller);
  Status SetSearchRules(Process& caller, const std::vector<std::string>& rules);
  Result<std::vector<std::string>> GetSearchRules(Process& caller);
  // fs_search: resolve `refname` through the search rules and initiate it.
  Result<SegNo> SearchInitiate(Process& caller, const std::string& refname);
  Result<std::string> PathnameOf(Process& caller, SegNo segno);
  // terminate_ref_name: unbind the name and terminate its segment.
  Status TerminateRefName(Process& caller, const std::string& refname);
  // expand_pathname: canonicalize a path string in ring 0 (legacy).
  Result<std::string> ExpandPathname(Process& caller, const std::string& path);

  // --- Gates: dynamic linker (legacy only; E1/E10) -------------------------
  Result<uint32_t> LinkSnapAll(Process& caller, SegNo object);
  Result<std::pair<SegNo, WordOffset>> LinkSnapOne(Process& caller, SegNo object,
                                                   uint32_t index);
  Result<WordOffset> LinkLookupSymbol(Process& caller, SegNo object, const std::string& symbol);
  Result<uint32_t> LinkGetEntryBound(Process& caller, SegNo object);
  Result<std::vector<std::string>> LinkGetDefs(Process& caller, SegNo object);
  Status LinkUnsnap(Process& caller, SegNo object);
  // combine_linkage: snap the links of several objects in one call.
  Result<uint32_t> CombineLinkage(Process& caller, const std::vector<SegNo>& objects);
  Status SetLinkagePtr(Process& caller, SegNo object, WordOffset lp);
  Result<WordOffset> GetLinkagePtr(const Process& caller, SegNo object) const;

  // --- Gates: file system (segment-number directory interface) ------------
  Result<Uid> FsCreateSegment(Process& caller, SegNo dir_segno, const std::string& name,
                              const SegmentAttributes& attrs);
  Result<Uid> FsCreateDirectory(Process& caller, SegNo dir_segno, const std::string& name,
                                const SegmentAttributes& attrs, uint32_t quota_pages = 0);
  Status FsCreateLink(Process& caller, SegNo dir_segno, const std::string& name,
                      const std::string& target);
  Status FsDelete(Process& caller, SegNo dir_segno, const std::string& name);
  Status FsRename(Process& caller, SegNo dir_segno, const std::string& from,
                  const std::string& to);
  Status FsAddName(Process& caller, SegNo dir_segno, const std::string& existing,
                   const std::string& additional);
  Result<std::vector<std::string>> FsList(Process& caller, SegNo dir_segno);
  Status FsSetAcl(Process& caller, SegNo dir_segno, const std::string& name,
                  const AclEntry& entry);
  Status FsRemoveAclEntry(Process& caller, SegNo dir_segno, const std::string& name,
                          const std::string& person, const std::string& project,
                          const std::string& tag);
  Result<std::vector<std::string>> FsListAcl(Process& caller, SegNo dir_segno,
                                             const std::string& name);
  Status FsSetRingBrackets(Process& caller, SegNo dir_segno, const std::string& name,
                           const RingBrackets& brackets, bool gate, uint32_t gate_entries);
  Status FsSetMaxLength(Process& caller, SegNo dir_segno, const std::string& name,
                        uint32_t max_pages);
  Status FsSetQuota(Process& caller, SegNo dir_segno, uint32_t quota_pages);
  Result<uint32_t> FsGetQuota(Process& caller, SegNo dir_segno);

  // --- Gates: IPC ----------------------------------------------------------
  // The channel is guarded by a segment: wakeup requires write access to the
  // guard; receiving requires read — "its use can be controlled with the
  // standard memory protection mechanisms of the kernel."
  Result<ChannelId> IpcCreateChannel(Process& caller, SegNo guard_segno);
  Status IpcDestroyChannel(Process& caller, ChannelId channel);
  Status IpcWakeup(Process& caller, ChannelId channel, uint64_t data);
  // Receive path used from inside Task::Step.
  Result<bool> IpcAwait(Process& caller, TaskContext& ctx, ChannelId channel);
  // ipc_channel_status: events queued on the channel (read access required).
  Result<uint64_t> IpcChannelStatus(Process& caller, ChannelId channel);

  // --- Gates: device I/O (legacy only; E12) --------------------------------
  Result<std::string> TtyRead(Process& caller, uint32_t line);
  Status TtyWrite(Process& caller, uint32_t line, const std::string& text);
  Result<std::string> CardRead(Process& caller);
  Status PrinterWrite(Process& caller, const std::string& line);
  Status PrinterEject(Process& caller);
  Result<std::string> TapeRead(Process& caller);
  Status TapeWrite(Process& caller, const std::string& record);
  Status TapeRewind(Process& caller);
  Status TapeSkip(Process& caller, uint32_t records);
  // Device access for tests/examples (simulated operator side).
  TtyLine& tty(uint32_t line) { return *ttys_[line]; }
  CardReader& card_reader() { return *card_reader_; }
  LinePrinter& printer() { return *printer_; }
  TapeDrive& tape() { return *tape_; }
  bool has_device_io() const { return !ttys_.empty(); }

  // --- Gates: network -------------------------------------------------------
  Result<ConnId> NetOpen(Process& caller, const std::string& remote);
  Status NetClose(Process& caller, ConnId conn);
  Status NetWrite(Process& caller, ConnId conn, const std::string& data);
  Result<std::string> NetRead(Process& caller, ConnId conn);
  Result<uint64_t> NetStatus(Process& caller, ConnId conn);  // Queued messages.

  // --- Gates: admin ----------------------------------------------------------
  Status Shutdown(Process& caller);
  Result<std::string> MeteringInfo(Process& caller);
  // Legacy login: the big privileged authenticator (removed in kernelized
  // config, where login is the subsystem-entry mechanism in the user ring).
  Result<Process*> LoginLegacy(Process& caller, const std::string& person,
                               const std::string& project, const std::string& password,
                               const MlsLabel& clearance);
  // Legacy logout: ends a session created by LoginLegacy. Unprivileged
  // callers may only log out sessions running under their own principal.
  Status Logout(Process& caller, ProcessId session);
  // Password registry (set up by system initialization).
  void RegisterUser(const std::string& person, const std::string& project,
                    const std::string& password, const MlsLabel& max_clearance);
  Result<MlsLabel> CheckPassword(const std::string& person, const std::string& project,
                                 const std::string& password) const;
  // Enumeration for the image generator ("backup daemon" privilege).
  template <typename Fn>
  void ForEachUser(Fn&& fn) const {
    for (const auto& [key, record] : users_) {
      auto dot = key.find('.');
      fn(key.substr(0, dot), key.substr(dot + 1), record.password, record.max_clearance);
    }
  }

  // Backup/dumper read path: kernel-authority word read by UID, used by the
  // memory-image generator and the backup daemon.
  Result<Word> DumpReadWord(Uid uid, WordOffset offset);

  // --- E3 metric -------------------------------------------------------------
  // Bytes of protected (ring-0) state the kernel holds to manage this
  // process's address space. In the legacy configuration that includes the
  // reference-name table, search rules, and per-segment pathname strings.
  size_t KernelAddressSpaceStateBytes(const Process& process) const;
  // Count of protected operations (gate-internal steps) executed for
  // address-space management so far.
  uint64_t address_space_ops() const { return address_space_ops_; }

 private:
  friend class KernelFaultSink;
  friend class KernelLinkEnv;

  // Per-process legacy naming state (kernel-resident in legacy configs).
  struct LegacyNamingState {
    std::unordered_map<std::string, SegNo> reference_names;
    std::vector<std::string> search_rules;
    std::unordered_map<SegNo, std::string> pathnames;
    std::unordered_map<SegNo, WordOffset> linkage_ptrs;
  };

  Result<SegNo> SearchInitiateInternal(Process& caller, const std::string& refname);

  // Gate prologue: existence check (kNotAGate when the mechanism is not in
  // this configuration's kernel) and call accounting. The ring-crossing
  // charge is separate (ChargeGateCrossing) so GateSpan can land it inside
  // the gate's causal span and the crossing shows up as gate self-cycles.
  Status EnterGate(Process& caller, const char* name);
  void ChargeGateCrossing(uint32_t arg_words);

  // Initiation tail shared by all addressing flavours.
  Result<SegNo> InitiateKnown(Process& caller, Uid uid, const char* operation);
  // Connects (or reconnects) the SDW for a known segment.
  Status ConnectSdw(Process& process, SegNo segno, Uid uid);
  void DisconnectSdwsFor(Uid uid);

  Result<Uid> ResolveDirSegno(Process& caller, SegNo dir_segno) const;
  Result<Uid> ResolvePathChecked(Process& caller, const std::string& path, const char* op);

  // Drops one initiation (or, when force, all of them): the SDW, KST entry,
  // store reference, connection record, and legacy naming residue go away
  // only when the usage count reaches zero.
  Status ReleaseSegno(Process& caller, SegNo segno, bool force);

  LegacyNamingState& naming(const Process& process);

  void RegisterGates();

  KernelParams params_;
  Machine machine_;
  CoreMap core_map_;
  PagingDevice bulk_;
  PagingDevice disk_;
  ActiveSegmentTable ast_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<PageControl> page_control_;
  SegmentStore store_;
  Hierarchy hierarchy_;
  GateTable gates_;
  AuditLog audit_;
  ReferenceMonitor monitor_;
  FlawRegistry flaws_;
  TrafficController traffic_;
  NetworkAttachment network_;

  // Legacy device stacks (only in per_device_io configurations).
  std::vector<std::unique_ptr<TtyLine>> ttys_;
  std::unique_ptr<CardReader> card_reader_;
  std::unique_ptr<LinePrinter> printer_;
  std::unique_ptr<TapeDrive> tape_;

  // uid -> processes that have it in their descriptor segment.
  std::unordered_map<Uid, std::vector<std::pair<ProcessId, SegNo>>> connections_;
  std::unordered_map<ProcessId, std::unique_ptr<FaultSink>> fault_sinks_;
  std::unordered_map<ProcessId, LegacyNamingState> legacy_naming_;
  std::unordered_map<ConnId, std::unique_ptr<ActiveSegment>> net_buffer_segments_;

  struct UserRecord {
    std::string password;
    MlsLabel max_clearance;
  };
  std::unordered_map<std::string, UserRecord> users_;

  Process* current_ = nullptr;
  uint64_t kernel_faults_ = 0;
  uint64_t address_space_ops_ = 0;

  friend class GateSpan;
};

// RAII gate prologue: performs EnterGate (existence check, call accounting,
// ring-crossing charge) and, when the gate exists, opens a causal span —
// kGateEnter/kGateExit bracketing the gate body, nested under whatever span
// the caller was in — attributed to the calling process at ring 0 (where
// the gate body runs), and feeds the elapsed cycles into the meter's
// per-gate distribution "gate/<name>". `name` must be a string literal —
// the flight recorder keeps the pointer.
class GateSpan {
 public:
  GateSpan(Kernel* kernel, Process& caller, const char* name, uint32_t arg_words = 2);
  ~GateSpan();

  GateSpan(const GateSpan&) = delete;
  GateSpan& operator=(const GateSpan&) = delete;

  Status status() const { return status_; }

 private:
  // First member: the host span opens before the gate prologue runs and
  // closes after everything else, so kGateCall covers the whole gate —
  // nested instrumented subsystems (page walks, locks, meter) subtract out
  // of its self time. Host-clock only; never touches simulated state.
  HostSpan host_span_{HostSubsystem::kGateCall};
  Kernel* kernel_;
  const char* name_;
  Status status_;
  TraceContext* ctx_ = nullptr;  // Context the span opened on; null if none.
  Attribution saved_attribution_{};
  bool locked_ = false;  // Global-lock mode: this span holds the kernel lock.
};

// Gate-body prologue: enter the gate (returning its error on refusal) and
// keep the RAII span alive for the rest of the enclosing scope.
#define MX_ENTER_GATE(caller, name, ...)                                   \
  GateSpan mx_gate_span(this, (caller), (name)__VA_OPT__(, ) __VA_ARGS__); \
  MX_RETURN_IF_ERROR(mx_gate_span.status())

}  // namespace multics

#endif  // SRC_CORE_KERNEL_H_
