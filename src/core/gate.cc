#include "src/core/gate.h"

namespace multics {

const char* GateCategoryName(GateCategory category) {
  switch (category) {
    case GateCategory::kAddressSpace:
      return "address-space";
    case GateCategory::kPathAddressing:
      return "path-addressing";
    case GateCategory::kNaming:
      return "naming";
    case GateCategory::kLinker:
      return "linker";
    case GateCategory::kFileSystem:
      return "file-system";
    case GateCategory::kSegment:
      return "segment";
    case GateCategory::kProcess:
      return "process";
    case GateCategory::kIpc:
      return "ipc";
    case GateCategory::kDeviceIo:
      return "device-io";
    case GateCategory::kNetwork:
      return "network";
    case GateCategory::kAdmin:
      return "admin";
  }
  return "?";
}

Status GateTable::Register(const std::string& name, GateCategory category) {
  if (Has(name)) {
    return Status::kAlreadyExists;
  }
  gates_.push_back(GateInfo{name, category, 0});
  return Status::kOk;
}

bool GateTable::Has(const std::string& name) const {
  for (const GateInfo& gate : gates_) {
    if (gate.name == name) {
      return true;
    }
  }
  return false;
}

Status GateTable::RecordCall(const std::string& name) {
  for (GateInfo& gate : gates_) {
    if (gate.name == name) {
      ++gate.calls;
      ++total_calls_;
      return Status::kOk;
    }
  }
  return Status::kNotAGate;
}

uint32_t GateTable::CountByCategory(GateCategory category) const {
  uint32_t n = 0;
  for (const GateInfo& gate : gates_) {
    if (gate.category == category) {
      ++n;
    }
  }
  return n;
}

}  // namespace multics
