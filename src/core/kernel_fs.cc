// File-system gates over the segment-number directory interface, plus the
// segment length/truncation gates. These survive kernelization: manipulating
// branches, ACLs, and quotas is information sharing and so must be common
// mechanism; only the *naming conveniences* moved out.

#include "src/core/kernel.h"

namespace multics {

namespace {

// Directory handle + entry lookup, with a directory-access check.
struct EntryRef {
  Uid dir_uid = kInvalidUid;
  Branch* dir_branch = nullptr;
  DirEntry entry;
};

}  // namespace

Result<Uid> Kernel::FsCreateSegment(Process& caller, SegNo dir_segno, const std::string& name,
                                    const SegmentAttributes& attrs) {
  MX_ENTER_GATE(caller, "fs_create_seg", 12);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirAppend, "fs_create_seg",
                                               machine_.clock().now(), Trusted(caller)));
  SegmentAttributes effective = attrs;
  effective.author = caller.principal();
  if (params_.config.mls_enforcement && caller.ring() > kRingSupervisor) {
    // The bottom layer labels new objects with the creating subject's label.
    effective.label = caller.clearance();
  }
  // Nobody mints authority below their own ring at creation either.
  if (!effective.brackets.Valid() ||
      (effective.brackets.write_limit < caller.ring() && caller.ring() > kRingSupervisor)) {
    audit_.Record(machine_.clock().now(), caller.principal().ToString(), "fs_create_seg",
                  kInvalidUid, Status::kRingViolation);
    return Status::kRingViolation;
  }
  return hierarchy_.CreateSegment(dir_uid, name, effective);
}

Result<Uid> Kernel::FsCreateDirectory(Process& caller, SegNo dir_segno, const std::string& name,
                                      const SegmentAttributes& attrs, uint32_t quota_pages) {
  MX_ENTER_GATE(caller, "fs_create_dir", 12);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirAppend, "fs_create_dir",
                                               machine_.clock().now(), Trusted(caller)));
  SegmentAttributes effective = attrs;
  effective.author = caller.principal();
  if (params_.config.mls_enforcement && caller.ring() > kRingSupervisor) {
    effective.label = caller.clearance();
  }
  return hierarchy_.CreateDirectory(dir_uid, name, effective, quota_pages);
}

Status Kernel::FsCreateLink(Process& caller, SegNo dir_segno, const std::string& name,
                            const std::string& target) {
  MX_ENTER_GATE(caller, "fs_create_link", 10);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirAppend, "fs_create_link",
                                               machine_.clock().now(), Trusted(caller)));
  return hierarchy_.CreateLink(dir_uid, name, target);
}

Status Kernel::FsDelete(Process& caller, SegNo dir_segno, const std::string& name) {
  MX_ENTER_GATE(caller, "fs_delete_entry", 8);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirModify,
                                               "fs_delete_entry", machine_.clock().now(), Trusted(caller)));
  return hierarchy_.DeleteEntry(dir_uid, name);
}

Status Kernel::FsRename(Process& caller, SegNo dir_segno, const std::string& from,
                        const std::string& to) {
  MX_ENTER_GATE(caller, "fs_rename", 10);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirModify, "fs_rename",
                                               machine_.clock().now(), Trusted(caller)));
  return hierarchy_.Rename(dir_uid, from, to);
}

Status Kernel::FsAddName(Process& caller, SegNo dir_segno, const std::string& existing,
                         const std::string& additional) {
  MX_ENTER_GATE(caller, "fs_add_name", 10);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirModify, "fs_add_name",
                                               machine_.clock().now(), Trusted(caller)));
  return hierarchy_.AddName(dir_uid, existing, additional);
}

Result<std::vector<std::string>> Kernel::FsList(Process& caller, SegNo dir_segno) {
  MX_ENTER_GATE(caller, "fs_list_dir", 4);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirStatus, "fs_list_dir",
                                               machine_.clock().now(), Trusted(caller)));
  MX_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, hierarchy_.List(dir_uid));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const DirEntry& entry : entries) {
    names.push_back(entry.name);
  }
  return names;
}

Result<BranchStatus> Kernel::FsStatus(Process& caller, SegNo dir_segno,
                                      const std::string& name) {
  MX_ENTER_GATE(caller, "fs_status_seg", 8);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirStatus, "fs_status_seg",
                                               machine_.clock().now(), Trusted(caller)));
  MX_ASSIGN_OR_RETURN(DirEntry entry, hierarchy_.Lookup(dir_uid, name));
  if (entry.is_link) {
    BranchStatus status;
    status.mode_string = "link->" + entry.link_target;
    return status;
  }
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(entry.uid));
  BranchStatus status;
  status.uid = branch->uid;
  status.is_directory = branch->is_directory;
  status.pages = branch->pages;
  status.mode_string = branch->is_directory
                           ? DirModeString(monitor_.DirectoryModes(*branch, caller.principal(),
                                                                   caller.clearance(), Trusted(caller)))
                           : SegmentModeString(monitor_.SegmentModes(*branch, caller.principal(),
                                                                     caller.clearance(), Trusted(caller)));
  status.label = branch->label.ToString();
  status.author = branch->author.ToString();
  return status;
}

namespace {

// The ACL operations need Modify on the *containing directory* (Multics kept
// ACLs in the branch, which lives in the directory).
Result<Uid> TargetForAclOp(Kernel& kernel, Process& caller, SegNo dir_segno,
                           const std::string& name, const char* op) {
  MX_ASSIGN_OR_RETURN(Uid dir_uid, [&]() -> Result<Uid> {
    auto uid = caller.kst().UidOf(dir_segno);
    if (!uid.ok()) {
      return Status::kSegmentNotKnown;
    }
    return uid.value();
  }());
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, kernel.store().Get(dir_uid));
  MX_RETURN_IF_ERROR(kernel.monitor().RequireDirectory(*dir_branch, caller.principal(),
                                                       caller.clearance(), kDirModify, op,
                                                       kernel.machine().clock().now(), caller.ring() <= kRingSupervisor));
  MX_ASSIGN_OR_RETURN(DirEntry entry, kernel.hierarchy().Lookup(dir_uid, name));
  if (entry.is_link) {
    return Status::kInvalidArgument;
  }
  return entry.uid;
}

}  // namespace

Status Kernel::FsSetAcl(Process& caller, SegNo dir_segno, const std::string& name,
                        const AclEntry& entry) {
  MX_ENTER_GATE(caller, "fs_set_acl", 12);
  MX_ASSIGN_OR_RETURN(Uid uid, TargetForAclOp(*this, caller, dir_segno, name, "fs_set_acl"));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  branch->acl.Set(entry);
  DisconnectSdwsFor(uid);  // Everyone re-derives access at the next touch.
  return Status::kOk;
}

Status Kernel::FsRemoveAclEntry(Process& caller, SegNo dir_segno, const std::string& name,
                                const std::string& person, const std::string& project,
                                const std::string& tag) {
  MX_ENTER_GATE(caller, "fs_remove_acl_entry", 12);
  MX_ASSIGN_OR_RETURN(Uid uid,
                      TargetForAclOp(*this, caller, dir_segno, name, "fs_remove_acl_entry"));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  MX_RETURN_IF_ERROR(branch->acl.Remove(person, project, tag));
  DisconnectSdwsFor(uid);
  return Status::kOk;
}

Result<std::vector<std::string>> Kernel::FsListAcl(Process& caller, SegNo dir_segno,
                                                   const std::string& name) {
  MX_ENTER_GATE(caller, "fs_list_acl", 8);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirStatus, "fs_list_acl",
                                               machine_.clock().now(), Trusted(caller)));
  MX_ASSIGN_OR_RETURN(DirEntry entry, hierarchy_.Lookup(dir_uid, name));
  if (entry.is_link) {
    return Status::kInvalidArgument;
  }
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(entry.uid));
  std::vector<std::string> lines;
  for (const AclEntry& acl_entry : branch->acl.entries()) {
    lines.push_back(acl_entry.NamePart() + " " +
                    (branch->is_directory ? DirModeString(acl_entry.modes)
                                          : SegmentModeString(acl_entry.modes)));
  }
  return lines;
}

Status Kernel::FsSetRingBrackets(Process& caller, SegNo dir_segno, const std::string& name,
                                 const RingBrackets& brackets, bool gate,
                                 uint32_t gate_entries) {
  MX_ENTER_GATE(caller, "fs_set_ring_brackets", 12);
  if (!brackets.Valid()) {
    return Status::kInvalidArgument;
  }
  // Nobody may set a write bracket below their own ring: that would mint
  // authority they do not have.
  if (brackets.write_limit < caller.ring()) {
    audit_.Record(machine_.clock().now(), caller.principal().ToString(),
                  "fs_set_ring_brackets", kInvalidUid, Status::kRingViolation);
    return Status::kRingViolation;
  }
  MX_ASSIGN_OR_RETURN(Uid uid,
                      TargetForAclOp(*this, caller, dir_segno, name, "fs_set_ring_brackets"));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  branch->brackets = brackets;
  branch->gate = gate;
  branch->gate_entries = gate_entries;
  DisconnectSdwsFor(uid);
  return Status::kOk;
}

Status Kernel::FsSetMaxLength(Process& caller, SegNo dir_segno, const std::string& name,
                              uint32_t max_pages) {
  MX_ENTER_GATE(caller, "fs_set_max_length", 10);
  MX_ASSIGN_OR_RETURN(Uid uid,
                      TargetForAclOp(*this, caller, dir_segno, name, "fs_set_max_length"));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  if (max_pages < branch->pages) {
    return Status::kFailedPrecondition;  // Truncate first.
  }
  branch->max_pages = max_pages;
  return Status::kOk;
}

Status Kernel::FsSetQuota(Process& caller, SegNo dir_segno, uint32_t quota_pages) {
  MX_ENTER_GATE(caller, "fs_set_quota", 6);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirModify, "fs_set_quota",
                                               machine_.clock().now(), Trusted(caller)));
  if (quota_pages != 0 && quota_pages < dir_branch->quota_used) {
    return Status::kQuotaExceeded;
  }
  dir_branch->quota_pages = quota_pages;
  return Status::kOk;
}

Result<uint32_t> Kernel::FsGetQuota(Process& caller, SegNo dir_segno) {
  MX_ENTER_GATE(caller, "fs_get_quota", 4);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(dir_uid));
  return branch->quota_pages;
}

// --- Segment gates -------------------------------------------------------------------

Result<uint32_t> Kernel::SegGetLength(Process& caller, SegNo segno) {
  MX_ENTER_GATE(caller, "seg_get_length", 4);
  MX_ASSIGN_OR_RETURN(Uid uid, ResolveDirSegno(caller, segno));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  if (ActiveSegment* seg = ast_.Find(uid); seg != nullptr) {
    return seg->pages;
  }
  return branch->pages;
}

Status Kernel::SegSetLength(Process& caller, SegNo segno, uint32_t pages) {
  // seg_set_length and seg_truncate share one implementation behind two
  // gates, as the real supervisor did.
  const char* gate = "seg_set_length";
  {
    auto uid = caller.kst().UidOf(segno);
    if (uid.ok()) {
      MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid.value()));
      uint32_t current =
          ast_.Find(uid.value()) != nullptr ? ast_.Find(uid.value())->pages : branch->pages;
      if (pages < current) {
        gate = "seg_truncate";
      }
    }
  }
  MX_ENTER_GATE(caller, gate, 6);
  MX_ASSIGN_OR_RETURN(Uid uid, ResolveDirSegno(caller, segno));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  // Changing the length modifies the segment: write access required.
  MX_RETURN_IF_ERROR(monitor_.RequireSegment(*branch, caller.principal(), caller.clearance(),
                                             kModeWrite, gate, machine_.clock().now(), Trusted(caller)));
  MX_RETURN_IF_ERROR(store_.SetLength(uid, pages));
  // Refresh this process's SDW bound (others refresh on segment fault).
  return ConnectSdw(caller, segno, uid);
}

}  // namespace multics
