// Supervisor configurations. The project's method is to *evolve* the big
// Multics supervisor into a kernel; each boolean below is one of the paper's
// removal/simplification projects, so the experiments can build the
// before-and-after systems and measure the difference.

#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <string>
#include <vector>

#include "src/core/gate.h"
#include "src/hw/machine.h"

namespace multics {

struct KernelConfiguration {
  // 645 software rings vs 6180 hardware rings (E2).
  RingMode ring_mode = RingMode::kHardware6180;

  // Dynamic linker executes in ring 0 (legacy) or the user ring (E1, E10).
  bool linker_in_kernel = true;

  // Reference names, search rules, and pathname-based addressing in ring 0
  // (legacy) or the user ring over a segment-number interface (E1, E3).
  bool naming_in_kernel = true;

  // Per-device I/O stacks in the kernel vs network-only external I/O (E12).
  bool per_device_io = true;

  // Sequential page control vs dedicated daemon processes (E4).
  bool parallel_page_control = false;

  // VM-backed infinite network buffers vs circular buffers (E5).
  bool infinite_net_buffers = false;

  // Mitre-model lattice enforcement at the bottom layer (E9).
  bool mls_enforcement = true;

  // Login implemented through the protected-subsystem entry mechanism,
  // making the answering service non-privileged (removal project 4).
  bool login_as_subsystem_entry = false;

  // Interrupt handlers as dedicated processes (E7).
  bool interrupt_processes = false;

  std::string Name() const;

  // The 645-era supervisor: everything in the kernel, software rings.
  static KernelConfiguration Legacy645();
  // The same big supervisor moved to the 6180 (hardware rings) — the state
  // of the system when the paper's project started.
  static KernelConfiguration Legacy6180();
  // The paper's target: minimal kernel, everything removable removed.
  static KernelConfiguration Kernelized6180();
};

// One entry of the gate census (experiment E1's unit of measure).
struct GateSpec {
  const char* name;
  GateCategory category;
};

// The user-callable gate surface this configuration's kernel exposes — the
// single source of truth: Kernel::RegisterGates registers exactly this list,
// and the static certifier (src/audit_static) re-derives it to verify the
// live gate table matches. mx_lint cross-checks that every name here is
// entered through the MX_ENTER_GATE prologue somewhere in src/core.
std::vector<GateSpec> GateCensus(const KernelConfiguration& config);

}  // namespace multics

#endif  // SRC_CORE_CONFIG_H_
