// The audit log: every reference-monitor decision is recorded here. The
// fault-injection experiments (E6, E10) use the log to demonstrate the
// negative property the paper cares about — that misbehaving non-kernel code
// produced *zero* unauthorized accesses, only denials.

#ifndef SRC_CORE_AUDIT_H_
#define SRC_CORE_AUDIT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/fs/branch.h"

namespace multics {

struct AuditRecord {
  Cycles time = 0;
  std::string principal;
  std::string operation;
  Uid uid = kInvalidUid;
  Status outcome = Status::kOk;
};

class AuditLog {
 public:
  explicit AuditLog(uint32_t keep_recent = 1024) : keep_recent_(keep_recent) {}

  void Record(Cycles time, const std::string& principal, const std::string& operation, Uid uid,
              Status outcome);

  uint64_t grants() const { return grants_; }
  uint64_t denials() const { return denials_; }
  // Lifetime count of denials with exactly this status. Backed by counters,
  // not the bounded `recent_` window, so it stays correct on long runs.
  uint64_t denials_with(Status status) const;

  // Lifetime per-category counts (MLS = read-up/write-down, ACL, rings).
  uint64_t mls_denials() const { return mls_denials_; }
  uint64_t acl_denials() const { return acl_denials_; }
  uint64_t ring_denials() const { return ring_denials_; }

  const std::deque<AuditRecord>& recent() const { return recent_; }

  void Clear();

 private:
  uint32_t keep_recent_;
  std::deque<AuditRecord> recent_;
  uint64_t grants_ = 0;
  uint64_t denials_ = 0;
  uint64_t mls_denials_ = 0;
  uint64_t acl_denials_ = 0;
  uint64_t ring_denials_ = 0;
  std::unordered_map<int32_t, uint64_t> denials_by_status_;
};

}  // namespace multics

#endif  // SRC_CORE_AUDIT_H_
