#include "src/core/config.h"

namespace multics {

std::string KernelConfiguration::Name() const {
  if (ring_mode == RingMode::kSoftware645) {
    return "legacy-645";
  }
  if (linker_in_kernel || naming_in_kernel || per_device_io) {
    return "legacy-6180";
  }
  return "kernelized-6180";
}

KernelConfiguration KernelConfiguration::Legacy645() {
  KernelConfiguration config;
  config.ring_mode = RingMode::kSoftware645;
  config.linker_in_kernel = true;
  config.naming_in_kernel = true;
  config.per_device_io = true;
  config.parallel_page_control = false;
  config.infinite_net_buffers = false;
  config.mls_enforcement = false;  // The 645 system predates the Mitre model.
  config.login_as_subsystem_entry = false;
  config.interrupt_processes = false;
  return config;
}

KernelConfiguration KernelConfiguration::Legacy6180() {
  KernelConfiguration config = Legacy645();
  config.ring_mode = RingMode::kHardware6180;
  config.mls_enforcement = true;
  return config;
}

KernelConfiguration KernelConfiguration::Kernelized6180() {
  KernelConfiguration config;
  config.ring_mode = RingMode::kHardware6180;
  config.linker_in_kernel = false;
  config.naming_in_kernel = false;
  config.per_device_io = false;
  config.parallel_page_control = true;
  config.infinite_net_buffers = true;
  config.mls_enforcement = true;
  config.login_as_subsystem_entry = true;
  config.interrupt_processes = true;
  return config;
}

}  // namespace multics
