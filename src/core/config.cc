#include "src/core/config.h"

namespace multics {

std::string KernelConfiguration::Name() const {
  if (ring_mode == RingMode::kSoftware645) {
    return "legacy-645";
  }
  if (linker_in_kernel || naming_in_kernel || per_device_io) {
    return "legacy-6180";
  }
  return "kernelized-6180";
}

KernelConfiguration KernelConfiguration::Legacy645() {
  KernelConfiguration config;
  config.ring_mode = RingMode::kSoftware645;
  config.linker_in_kernel = true;
  config.naming_in_kernel = true;
  config.per_device_io = true;
  config.parallel_page_control = false;
  config.infinite_net_buffers = false;
  config.mls_enforcement = false;  // The 645 system predates the Mitre model.
  config.login_as_subsystem_entry = false;
  config.interrupt_processes = false;
  return config;
}

KernelConfiguration KernelConfiguration::Legacy6180() {
  KernelConfiguration config = Legacy645();
  config.ring_mode = RingMode::kHardware6180;
  config.mls_enforcement = true;
  return config;
}

KernelConfiguration KernelConfiguration::Kernelized6180() {
  KernelConfiguration config;
  config.ring_mode = RingMode::kHardware6180;
  config.linker_in_kernel = false;
  config.naming_in_kernel = false;
  config.per_device_io = false;
  config.parallel_page_control = true;
  config.infinite_net_buffers = true;
  config.mls_enforcement = true;
  config.login_as_subsystem_entry = true;
  config.interrupt_processes = true;
  return config;
}

std::vector<GateSpec> GateCensus(const KernelConfiguration& config) {
  std::vector<GateSpec> census;
  auto add = [&census](GateSpec spec) { census.push_back(spec); };

  // Segment-number address space (the minimal interface).
  add({"get_root_dir", GateCategory::kAddressSpace});
  add({"initiate_seg", GateCategory::kAddressSpace});
  add({"terminate_seg", GateCategory::kAddressSpace});
  add({"kst_status", GateCategory::kAddressSpace});

  // Pathname addressing: the kernel-resident half of the old naming world.
  if (config.naming_in_kernel) {
    add({"initiate_path", GateCategory::kPathAddressing});
    add({"initiate_count_path", GateCategory::kPathAddressing});
    add({"terminate_path", GateCategory::kPathAddressing});
    add({"terminate_file_path", GateCategory::kPathAddressing});
    add({"status_path", GateCategory::kPathAddressing});
    add({"create_seg_path", GateCategory::kPathAddressing});
    add({"delete_path", GateCategory::kPathAddressing});
    add({"list_dir_path", GateCategory::kPathAddressing});
    add({"set_acl_path", GateCategory::kPathAddressing});
    add({"chname_path", GateCategory::kPathAddressing});
    add({"quota_read_path", GateCategory::kPathAddressing});

    add({"bind_ref_name", GateCategory::kNaming});
    add({"unbind_ref_name", GateCategory::kNaming});
    add({"lookup_ref_name", GateCategory::kNaming});
    add({"list_ref_names", GateCategory::kNaming});
    add({"terminate_ref_name", GateCategory::kNaming});
    add({"set_search_rules", GateCategory::kNaming});
    add({"get_search_rules", GateCategory::kNaming});
    add({"search_initiate", GateCategory::kNaming});
    add({"get_pathname", GateCategory::kNaming});
    add({"expand_pathname", GateCategory::kNaming});
  }

  if (config.linker_in_kernel) {
    add({"link_snap_all", GateCategory::kLinker});
    add({"link_snap_one", GateCategory::kLinker});
    add({"link_lookup_symbol", GateCategory::kLinker});
    add({"link_get_entry_bound", GateCategory::kLinker});
    add({"link_get_defs", GateCategory::kLinker});
    add({"link_unsnap", GateCategory::kLinker});
    add({"combine_linkage", GateCategory::kLinker});
    add({"set_linkage_ptr", GateCategory::kLinker});
  }

  // File system (segment-number directory interface).
  add({"fs_create_seg", GateCategory::kFileSystem});
  add({"fs_create_dir", GateCategory::kFileSystem});
  add({"fs_create_link", GateCategory::kFileSystem});
  add({"fs_delete_entry", GateCategory::kFileSystem});
  add({"fs_rename", GateCategory::kFileSystem});
  add({"fs_add_name", GateCategory::kFileSystem});
  add({"fs_list_dir", GateCategory::kFileSystem});
  add({"fs_status_seg", GateCategory::kFileSystem});
  add({"fs_set_acl", GateCategory::kFileSystem});
  add({"fs_remove_acl_entry", GateCategory::kFileSystem});
  add({"fs_list_acl", GateCategory::kFileSystem});
  add({"fs_set_ring_brackets", GateCategory::kFileSystem});
  add({"fs_set_max_length", GateCategory::kFileSystem});
  add({"fs_set_quota", GateCategory::kFileSystem});
  add({"fs_get_quota", GateCategory::kFileSystem});

  add({"seg_get_length", GateCategory::kSegment});
  add({"seg_set_length", GateCategory::kSegment});
  add({"seg_truncate", GateCategory::kSegment});

  add({"proc_create", GateCategory::kProcess});
  add({"proc_destroy", GateCategory::kProcess});
  add({"proc_get_info", GateCategory::kProcess});
  add({"proc_metering", GateCategory::kProcess});

  add({"ipc_create_channel", GateCategory::kIpc});
  add({"ipc_destroy_channel", GateCategory::kIpc});
  add({"ipc_wakeup", GateCategory::kIpc});
  add({"ipc_block", GateCategory::kIpc});
  add({"ipc_channel_status", GateCategory::kIpc});

  if (config.per_device_io) {
    add({"tty_read", GateCategory::kDeviceIo});
    add({"tty_write", GateCategory::kDeviceIo});
    add({"card_read", GateCategory::kDeviceIo});
    add({"printer_write", GateCategory::kDeviceIo});
    add({"printer_eject", GateCategory::kDeviceIo});
    add({"tape_read", GateCategory::kDeviceIo});
    add({"tape_write", GateCategory::kDeviceIo});
    add({"tape_rewind", GateCategory::kDeviceIo});
    add({"tape_skip", GateCategory::kDeviceIo});
  }

  add({"net_open", GateCategory::kNetwork});
  add({"net_close", GateCategory::kNetwork});
  add({"net_read", GateCategory::kNetwork});
  add({"net_write", GateCategory::kNetwork});
  add({"net_status", GateCategory::kNetwork});

  add({"shutdown", GateCategory::kAdmin});
  add({"metering_info", GateCategory::kAdmin});
  if (!config.login_as_subsystem_entry) {
    add({"login", GateCategory::kAdmin});
    add({"logout", GateCategory::kAdmin});
  }
  return census;
}

}  // namespace multics
