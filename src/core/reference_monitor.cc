#include "src/core/reference_monitor.h"

namespace multics {

uint8_t ReferenceMonitor::SegmentModes(const Branch& branch, const Principal& principal,
                                       const MlsLabel& clearance, bool trusted) {
  ++checks_;
  uint8_t modes = branch.acl.EffectiveModes(principal);
  if (mls_ && !trusted) {
    if (!MlsCanRead(clearance, branch.label)) {
      modes &= static_cast<uint8_t>(~(kModeRead | kModeExecute));
    }
    if (!MlsCanWrite(clearance, branch.label)) {
      modes &= static_cast<uint8_t>(~kModeWrite);
    }
  }
  return modes;
}

uint8_t ReferenceMonitor::DirectoryModes(const Branch& branch, const Principal& principal,
                                         const MlsLabel& clearance, bool trusted) {
  ++checks_;
  uint8_t modes = branch.acl.EffectiveModes(principal);
  if (mls_ && !trusted) {
    if (!MlsCanRead(clearance, branch.label)) {
      modes &= static_cast<uint8_t>(~kDirStatus);
    }
    if (!MlsCanWrite(clearance, branch.label)) {
      modes &= static_cast<uint8_t>(~(kDirModify | kDirAppend));
    }
  }
  return modes;
}

namespace {

// Distinguishes the reason a wanted mode is missing, for the audit trail.
Status DenialReason(bool mls_enforced, const MlsLabel& clearance, const MlsLabel& label,
                    uint8_t wanted, bool read_like_missing, bool write_like_missing) {
  if (mls_enforced) {
    if (read_like_missing && !MlsCanRead(clearance, label)) {
      return Status::kMlsReadViolation;
    }
    if (write_like_missing && !MlsCanWrite(clearance, label)) {
      return Status::kMlsWriteViolation;
    }
  }
  (void)wanted;
  return Status::kAccessDenied;
}

}  // namespace

Status ReferenceMonitor::RequireSegment(const Branch& branch, const Principal& principal,
                                        const MlsLabel& clearance, uint8_t wanted,
                                        const char* operation, Cycles now, bool trusted) {
  uint8_t granted = SegmentModes(branch, principal, clearance, trusted);
  Status outcome = Status::kOk;
  if ((granted & wanted) != wanted) {
    uint8_t missing = wanted & static_cast<uint8_t>(~granted);
    outcome = DenialReason(mls_ && !trusted, clearance, branch.label, wanted,
                           (missing & (kModeRead | kModeExecute)) != 0,
                           (missing & kModeWrite) != 0);
  }
  audit_->Record(now, principal.ToString(), operation, branch.uid, outcome);
  return outcome;
}

Status ReferenceMonitor::RequireDirectory(const Branch& branch, const Principal& principal,
                                          const MlsLabel& clearance, uint8_t wanted,
                                          const char* operation, Cycles now, bool trusted) {
  uint8_t granted = DirectoryModes(branch, principal, clearance, trusted);
  Status outcome = Status::kOk;
  if ((granted & wanted) != wanted) {
    uint8_t missing = wanted & static_cast<uint8_t>(~granted);
    outcome = DenialReason(mls_ && !trusted, clearance, branch.label, wanted,
                           (missing & kDirStatus) != 0,
                           (missing & (kDirModify | kDirAppend)) != 0);
  }
  audit_->Record(now, principal.ToString(), operation, branch.uid, outcome);
  return outcome;
}

SegmentDescriptor ReferenceMonitor::BuildSdw(const Branch& branch, uint8_t granted_modes,
                                             PageTable* page_table) const {
  SegmentDescriptor sdw;
  sdw.valid = true;
  sdw.page_table = page_table;
  sdw.length_pages = page_table != nullptr ? page_table->size() : 0;
  sdw.brackets = branch.brackets;
  sdw.read = (granted_modes & kModeRead) != 0;
  sdw.write = (granted_modes & kModeWrite) != 0;
  sdw.execute = (granted_modes & kModeExecute) != 0;
  sdw.gate = branch.gate;
  sdw.gate_entries = branch.gate_entries;
  sdw.uid = branch.uid;
  return sdw;
}

}  // namespace multics
