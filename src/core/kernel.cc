#include "src/core/kernel.h"

#include "src/base/log.h"

namespace multics {

// --- Fault handling ---------------------------------------------------------------

// The per-process fault sink: segment faults reconnect SDWs (reactivating
// the segment and *recomputing access* — the reference monitor re-decides at
// every reconnection, as Multics did); page faults go to page control.
class KernelFaultSink : public FaultSink {
 public:
  KernelFaultSink(Kernel* kernel, Process* process) : kernel_(kernel), process_(process) {}

  Status HandleSegmentFault(SegNo segno) override {
    auto uid = process_->kst().UidOf(segno);
    if (!uid.ok()) {
      return Status::kNoSuchSegment;  // Never initiated: a real user error.
    }
    return kernel_->ConnectSdw(*process_, segno, uid.value());
  }

  Status HandlePageFault(SegNo segno, PageNo page, AccessMode mode) override {
    auto uid = process_->kst().UidOf(segno);
    if (!uid.ok()) {
      return Status::kNoSuchSegment;
    }
    ActiveSegment* seg = kernel_->store().ast()->Find(uid.value());
    if (seg == nullptr) {
      MX_RETURN_IF_ERROR(kernel_->ConnectSdw(*process_, segno, uid.value()));
      seg = kernel_->store().ast()->Find(uid.value());
      if (seg == nullptr) {
        return Status::kInternal;
      }
    }
    return kernel_->page_control().EnsureResident(seg, page, mode);
  }

 private:
  Kernel* kernel_;
  Process* process_;
};

// --- Construction -------------------------------------------------------------------

Kernel::Kernel(const KernelParams& params)
    : params_([&] {
        KernelParams p = params;
        p.machine.ring_mode = params.config.ring_mode;
        return p;
      }()),
      machine_(params_.machine),
      core_map_(params_.machine.core_frames),
      bulk_(MakeBulkStore(params_.bulk_pages, &machine_)),
      disk_(MakeDisk(params_.disk_pages, &machine_)),
      ast_(params_.ast_capacity),
      policy_(MakePolicy(params_.replacement_policy)),
      store_(&machine_, &ast_, &disk_),
      hierarchy_(&store_),
      audit_(),
      monitor_(&audit_, params_.config.mls_enforcement),
      traffic_(&machine_, params_.virtual_processors),
      network_(&machine_, NetworkAttachment::Config{}) {
  CHECK(policy_ != nullptr) << "unknown replacement policy " << params_.replacement_policy;

  if (params_.config.parallel_page_control) {
    page_control_ = std::make_unique<ParallelPageControl>(&machine_, &core_map_, &bulk_, &disk_,
                                                          policy_.get(),
                                                          params_.parallel_page_control);
  } else {
    page_control_ = std::make_unique<SequentialPageControl>(&machine_, &core_map_, &bulk_,
                                                            &disk_, policy_.get());
  }
  store_.AttachPageControl(page_control_.get());
  store_.SetDeactivateHook([this](Uid uid) { DisconnectSdwsFor(uid); });

  CHECK(hierarchy_.Init() == Status::kOk);

  if (params_.config.per_device_io) {
    for (uint32_t line = 0; line < 4; ++line) {
      ttys_.push_back(std::make_unique<TtyLine>(&machine_, /*interrupt line=*/line));
    }
    card_reader_ = std::make_unique<CardReader>(&machine_);
    printer_ = std::make_unique<LinePrinter>(&machine_);
    tape_ = std::make_unique<TapeDrive>(&machine_);
  }

  traffic_.SetInterruptStrategy(params_.config.interrupt_processes
                                    ? InterruptStrategy::kDedicatedProcesses
                                    : InterruptStrategy::kInlineInCurrentProcess);

  for (const FlawReport& report : BuiltinFlawCatalog()) {
    flaws_.Add(report);
  }

  RegisterGates();
}

Kernel::~Kernel() = default;

void Kernel::RegisterGates() {
  // The census lives in config.cc (single source of truth): the static
  // certifier re-derives it to check the live table, and mx_lint checks that
  // every census name is entered through the MX_ENTER_GATE prologue.
  for (const GateSpec& spec : GateCensus(params_.config)) {
    CHECK(gates_.Register(spec.name, spec.category) == Status::kOk);
  }
}

// --- Gate prologue -------------------------------------------------------------------

GateSpan::GateSpan(Kernel* kernel, Process& caller, const char* name, uint32_t arg_words)
    : kernel_(kernel), name_(name), status_(kernel->EnterGate(caller, name)) {
  if (status_ != Status::kOk) {
    return;
  }
  // In global-lock mode the whole gate body runs under the one kernel lock —
  // the configuration the scaling benchmark uses as its strawman. (In
  // partitioned mode each module takes its own lock instead.)
  if (kernel_->machine_.lock_mode() == LockMode::kGlobalKernelLock) {
    kernel_->machine_.locks().Global().Acquire();
    locked_ = true;
  }
  Meter& meter = kernel_->machine_.meter();
  if (meter.enabled()) {
    // Attribute the gate body to the calling process running in ring 0; the
    // span itself stays on the current causal stack, so a gate called from a
    // bench's session span (or another process's open span) nests under it.
    saved_attribution_ = meter.SetAttribution(Attribution{caller.pid(), kRingKernel});
    ctx_ = meter.OpenSpan(name_, TraceEventKind::kGateEnter);
  }
  // Charged after the span opens so the crossing is gate self-time; the
  // charge itself does not depend on whether the meter is enabled.
  kernel_->ChargeGateCrossing(arg_words);
}

GateSpan::~GateSpan() {
  if (locked_) {
    kernel_->machine_.locks().Global().Release();
  }
  if (status_ != Status::kOk || ctx_ == nullptr) {
    return;
  }
  Meter& meter = kernel_->machine_.meter();
  const Cycles elapsed = meter.CloseSpan(ctx_, TraceEventKind::kGateExit);
  meter.SetAttribution(saved_attribution_);
  if (meter.enabled()) {
    meter.AddSample(std::string("gate/") + name_, static_cast<double>(elapsed));
  }
}

Status Kernel::EnterGate(Process& caller, const char* name) {
  Status st = gates_.RecordCall(name);
  if (st != Status::kOk) {
    // The mechanism is not part of this configuration's kernel: there is no
    // such gate in the descriptor, so the hardware would fault the call.
    audit_.Record(machine_.clock().now(), caller.principal().ToString(), name, kInvalidUid,
                  Status::kNotAGate);
    return Status::kNotAGate;
  }
  // Injection point: crash the calling process inside this gate after a
  // configured number of cycles. The charge models the partial execution of
  // the gate body before the crash; the fault is audited and surfaces as an
  // ordinary denial, so no kernel data structure is left half-updated —
  // exactly the containment property the gate discipline is meant to give.
  if (machine_.injector() != nullptr) {
    InjectionDecision d = machine_.ConsultInjector(InjectSite::kGateEntry, name, caller.pid());
    if (d.IsFault()) {
      if (d.delay > 0) {
        machine_.Charge(d.delay, "fault_path");
      }
      audit_.Record(machine_.clock().now(), caller.principal().ToString(), name, kInvalidUid,
                    d.fault);
      return d.fault;
    }
  }
  return Status::kOk;
}

void Kernel::ChargeGateCrossing(uint32_t arg_words) {
  const CostModel& costs = machine_.costs();
  if (machine_.ring_mode() == RingMode::kHardware6180) {
    machine_.Charge(costs.intra_ring_call + costs.hardware_ring_call_extra +
                        costs.intra_ring_return + costs.hardware_ring_return_extra,
                    "gate_crossing");
  } else {
    machine_.Charge(costs.intra_ring_call + costs.software_ring_trap +
                        costs.software_ring_validate + costs.software_ring_swap +
                        costs.software_ring_arg_copy_per_word * arg_words +
                        costs.intra_ring_return + costs.software_ring_trap +
                        costs.software_ring_swap,
                    "gate_crossing");
  }
}

// --- Process management ----------------------------------------------------------------

Result<Process*> Kernel::BootstrapProcess(const std::string& name, const Principal& principal,
                                          const MlsLabel& clearance,
                                          std::unique_ptr<Task> program) {
  if (program == nullptr) {
    program = std::make_unique<FnTask>([](TaskContext&) { return TaskState::kDone; });
  }
  auto process =
      traffic_.CreateProcess(name, principal, clearance, kRingUser, std::move(program));
  if (!process.ok()) {
    return process.status();
  }
  fault_sinks_[process.value()->pid()] =
      std::make_unique<KernelFaultSink>(this, process.value());
  return process;
}

Result<Process*> Kernel::ProcCreate(Process& caller, const std::string& name,
                                    const Principal& principal, const MlsLabel& clearance,
                                    std::unique_ptr<Task> program) {
  MX_ENTER_GATE(caller, "proc_create");
  Principal effective = principal;
  MlsLabel label = clearance;
  if (caller.ring() > kRingSupervisor) {
    // Unprivileged callers cannot mint foreign principals or raise clearance.
    effective = caller.principal();
    if (!caller.clearance().Dominates(label)) {
      label = caller.clearance();
    }
  }
  auto process = BootstrapProcess(name, effective, label, std::move(program));
  if (process.ok()) {
    audit_.Record(machine_.clock().now(), caller.principal().ToString(), "proc_create",
                  kInvalidUid, Status::kOk);
  }
  return process;
}

Status Kernel::ProcDestroy(Process& caller, ProcessId pid) {
  MX_ENTER_GATE(caller, "proc_destroy");
  Process* victim = traffic_.Find(pid);
  if (victim == nullptr) {
    return Status::kNoSuchProcess;
  }
  if (caller.ring() > kRingSupervisor && victim->principal() != caller.principal()) {
    audit_.Record(machine_.clock().now(), caller.principal().ToString(), "proc_destroy",
                  kInvalidUid, Status::kAccessDenied);
    return Status::kAccessDenied;
  }
  // Tear down the address space: every known segment is terminated.
  std::vector<SegNo> segnos;
  victim->kst().ForEach([&](SegNo segno, Uid) { segnos.push_back(segno); });
  for (SegNo segno : segnos) {
    (void)ReleaseSegno(*victim, segno, /*force=*/true);
  }
  legacy_naming_.erase(pid);
  fault_sinks_.erase(pid);
  victim->set_state(TaskState::kDone);
  return Status::kOk;
}

Result<std::string> Kernel::ProcGetInfo(Process& caller, ProcessId pid) {
  MX_ENTER_GATE(caller, "proc_get_info");
  Process* process = traffic_.Find(pid);
  if (process == nullptr) {
    return Status::kNoSuchProcess;
  }
  return process->name() + " " + process->principal().ToString() + " ring=" +
         std::to_string(process->ring()) + " cpu=" +
         std::to_string(process->accounting().cpu_used) + " known_segs=" +
         std::to_string(process->kst().size());
}

Result<std::string> Kernel::ProcMetering(Process& caller) {
  MX_ENTER_GATE(caller, "proc_metering", 2);
  const ProcessAccounting& accounting = caller.accounting();
  return "cpu=" + std::to_string(accounting.cpu_used) + " stolen=" +
         std::to_string(accounting.stolen_by_interrupts) + " dispatches=" +
         std::to_string(accounting.dispatches) + " known_segs=" +
         std::to_string(caller.kst().size());
}

Status Kernel::RunAs(Process& process) {
  auto it = fault_sinks_.find(process.pid());
  if (it == fault_sinks_.end()) {
    return Status::kNoSuchProcess;
  }
  if (current_ != &process) {
    machine_.Charge(machine_.costs().process_switch, "scheduler");
  }
  current_ = &process;
  // Bind the process to whichever CPU the traffic controller made active:
  // address space, fault sink, and ring all live in per-CPU processor state.
  Processor& cpu = machine_.active_processor();
  cpu.AttachAddressSpace(&process.dseg());
  cpu.SetFaultSink(it->second.get());
  cpu.SetRing(process.ring());
  return Status::kOk;
}

// --- SDW management ----------------------------------------------------------------------

Status Kernel::ConnectSdw(Process& process, SegNo segno, Uid uid) {
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  ++address_space_ops_;

  SegmentDescriptor sdw;
  if (branch->is_directory) {
    // Directories are opaque handles in the user ring: a valid SDW with no
    // permissions and no pages. The kernel alone walks their contents.
    sdw.valid = true;
    sdw.page_table = nullptr;
    sdw.length_pages = 0;
    sdw.brackets = KernelPrivateBrackets();
    sdw.uid = uid;
  } else {
    uint8_t modes =
        monitor_.SegmentModes(*branch, process.principal(), process.clearance(), Trusted(process));
    MX_ASSIGN_OR_RETURN(ActiveSegment * seg, store_.Activate(uid));
    sdw = monitor_.BuildSdw(*branch, modes, &seg->page_table);
    sdw.length_pages = seg->pages;
  }
  process.dseg().Set(segno, sdw);

  auto& conns = connections_[uid];
  if (std::find(conns.begin(), conns.end(), std::make_pair(process.pid(), segno)) ==
      conns.end()) {
    conns.emplace_back(process.pid(), segno);
  }
  return Status::kOk;
}

void Kernel::DisconnectSdwsFor(Uid uid) {
  auto it = connections_.find(uid);
  if (it == connections_.end()) {
    return;
  }
  for (const auto& [pid, segno] : it->second) {
    if (Process* process = traffic_.Find(pid); process != nullptr) {
      SegmentDescriptor* sdw = process->dseg().GetMutable(segno);
      if (sdw != nullptr) {
        sdw->valid = false;  // Next touch takes a segment fault.
        sdw->page_table = nullptr;
      }
    }
  }
}

Result<SegNo> Kernel::InitiateKnown(Process& caller, Uid uid, const char* operation) {
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  ++address_space_ops_;

  if (!branch->is_directory) {
    uint8_t modes =
        monitor_.SegmentModes(*branch, caller.principal(), caller.clearance(), Trusted(caller));
    if (modes == kModeNull) {
      audit_.Record(machine_.clock().now(), caller.principal().ToString(), operation, uid,
                    Status::kAccessDenied);
      return Status::kAccessDenied;
    }
    audit_.Record(machine_.clock().now(), caller.principal().ToString(), operation, uid,
                  Status::kOk);
  }

  bool already_known = caller.kst().IsKnown(uid);
  MX_ASSIGN_OR_RETURN(SegNo segno, caller.kst().Assign(uid));
  if (!already_known) {
    store_.AddRef(uid);
  }
  MX_RETURN_IF_ERROR(ConnectSdw(caller, segno, uid));
  return segno;
}

Status Kernel::ReleaseSegno(Process& caller, SegNo segno, bool force) {
  auto uid = caller.kst().UidOf(segno);
  if (!uid.ok()) {
    return Status::kSegmentNotKnown;
  }
  ++address_space_ops_;
  if (force) {
    MX_RETURN_IF_ERROR(caller.kst().ForceRelease(segno));
  } else {
    MX_ASSIGN_OR_RETURN(uint32_t remaining, caller.kst().Release(segno));
    if (remaining > 0) {
      return Status::kOk;  // Other initiations of this process still hold it.
    }
  }
  caller.dseg().Clear(segno);
  (void)store_.DropRef(uid.value());
  std::erase(connections_[uid.value()], std::make_pair(caller.pid(), segno));
  if (params_.config.naming_in_kernel) {
    LegacyNamingState& state = naming(caller);
    state.pathnames.erase(segno);
    state.linkage_ptrs.erase(segno);
    std::erase_if(state.reference_names,
                  [segno](const auto& kv) { return kv.second == segno; });
  }
  return Status::kOk;
}

Result<Uid> Kernel::ResolveDirSegno(Process& caller, SegNo dir_segno) const {
  auto uid = caller.kst().UidOf(dir_segno);
  if (!uid.ok()) {
    return Status::kSegmentNotKnown;
  }
  return uid.value();
}

Kernel::LegacyNamingState& Kernel::naming(const Process& process) {
  return legacy_naming_[process.pid()];
}

// --- E3 metric -----------------------------------------------------------------------------

size_t Kernel::KernelAddressSpaceStateBytes(const Process& process) const {
  size_t bytes = process.kst().KernelStateBytes();
  auto it = legacy_naming_.find(process.pid());
  if (it != legacy_naming_.end()) {
    const LegacyNamingState& state = it->second;
    for (const auto& [name, segno] : state.reference_names) {
      bytes += name.size() + sizeof(SegNo) + 16;  // Hash-table entry overhead.
    }
    for (const std::string& rule : state.search_rules) {
      bytes += rule.size() + 16;
    }
    for (const auto& [segno, path] : state.pathnames) {
      bytes += path.size() + sizeof(SegNo) + 16;
    }
  }
  return bytes;
}

// --- Admin gates ------------------------------------------------------------------------------

Status Kernel::Shutdown(Process& caller) {
  MX_ENTER_GATE(caller, "shutdown");
  if (caller.ring() > kRingSupervisor) {
    return Status::kAccessDenied;
  }
  page_control_->PumpIdle();
  return store_.DeactivateAll();
}

Result<std::string> Kernel::MeteringInfo(Process& caller) {
  MX_ENTER_GATE(caller, "metering_info");
  const PageControlMetrics& pm = page_control_->metrics();
  std::string out = "config=" + params_.config.Name();
  out += " gates=" + std::to_string(gates_.count());
  out += " gate_calls=" + std::to_string(gates_.total_calls());
  out += " faults=" + std::to_string(pm.faults);
  out += " active_segments=" + std::to_string(ast_.size());
  out += " audit_grants=" + std::to_string(audit_.grants());
  out += " audit_denials=" + std::to_string(audit_.denials());
  return out;
}

void Kernel::RegisterUser(const std::string& person, const std::string& project,
                          const std::string& password, const MlsLabel& max_clearance) {
  users_[person + "." + project] = UserRecord{password, max_clearance};
}

Result<MlsLabel> Kernel::CheckPassword(const std::string& person, const std::string& project,
                                       const std::string& password) const {
  auto it = users_.find(person + "." + project);
  if (it == users_.end() || it->second.password != password) {
    return Status::kAuthenticationFailed;
  }
  return it->second.max_clearance;
}

Result<Process*> Kernel::LoginLegacy(Process& caller, const std::string& person,
                                     const std::string& project, const std::string& password,
                                     const MlsLabel& clearance) {
  MX_ENTER_GATE(caller, "login");
  auto max_clearance = CheckPassword(person, project, password);
  if (!max_clearance.ok()) {
    audit_.Record(machine_.clock().now(), person + "." + project, "login", kInvalidUid,
                  Status::kAuthenticationFailed);
    return max_clearance.status();
  }
  if (!max_clearance->Dominates(clearance)) {
    audit_.Record(machine_.clock().now(), person + "." + project, "login", kInvalidUid,
                  Status::kMlsReadViolation);
    return Status::kAccessDenied;
  }
  audit_.Record(machine_.clock().now(), person + "." + project, "login", kInvalidUid,
                Status::kOk);
  return BootstrapProcess(person + "_process", Principal{person, project, "a"}, clearance);
}

Status Kernel::Logout(Process& caller, ProcessId session) {
  MX_ENTER_GATE(caller, "logout");
  Process* victim = traffic_.Find(session);
  if (victim == nullptr) {
    return Status::kNoSuchProcess;
  }
  if (caller.ring() > kRingSupervisor && victim->principal() != caller.principal()) {
    audit_.Record(machine_.clock().now(), caller.principal().ToString(), "logout",
                  kInvalidUid, Status::kAccessDenied);
    return Status::kAccessDenied;
  }
  // The session's address space is torn down exactly as proc_destroy does it.
  std::vector<SegNo> segnos;
  victim->kst().ForEach([&](SegNo segno, Uid) { segnos.push_back(segno); });
  for (SegNo segno : segnos) {
    (void)ReleaseSegno(*victim, segno, /*force=*/true);
  }
  legacy_naming_.erase(session);
  fault_sinks_.erase(session);
  victim->set_state(TaskState::kDone);
  audit_.Record(machine_.clock().now(), caller.principal().ToString(), "logout", kInvalidUid,
                Status::kOk);
  return Status::kOk;
}

}  // namespace multics
