// The in-kernel dynamic linker gates (legacy configurations only).
//
// This is the mechanism the paper calls "especially vulnerable and complex":
// "the chances of such a complex 'argument', if maliciously malstructured,
// causing the linker to malfunction while executing in the supervisor were
// demonstrated to be very high by numerous accidents." We reproduce the sin
// faithfully: the kernel-resident linker runs with validate=false, trusting
// the user-constructed object header, and every wild reference it takes is a
// ring-0 fault counted in kernel_faults() — experiment E10's crash counter.

#include "src/core/kernel.h"

namespace multics {

// Linkage environment for the ring-0 linker: name resolution through the
// kernel's own reference names and search rules; word access with kernel
// authority (no ring or permission checks — it IS ring 0, that's the bug).
class KernelLinkEnv : public LinkageEnvironment {
 public:
  KernelLinkEnv(Kernel* kernel, Process* process) : kernel_(kernel), process_(process) {}

  Result<SegNo> FindSegment(const std::string& name) override {
    return kernel_->SearchInitiateInternal(*process_, name);
  }

  Result<Word> ReadWord(SegNo segno, WordOffset offset) override {
    return kernel_->KernelReadWord(*process_, segno, offset);
  }

  Status WriteWord(SegNo segno, WordOffset offset, Word value) override {
    return kernel_->KernelWriteWord(*process_, segno, offset, value);
  }

  Result<uint32_t> SegmentLengthWords(SegNo segno) override {
    auto uid = process_->kst().UidOf(segno);
    if (!uid.ok()) {
      return Status::kNoSuchSegment;
    }
    MX_ASSIGN_OR_RETURN(ActiveSegment * seg, kernel_->store().Activate(uid.value()));
    return seg->pages * kPageWords;
  }

 private:
  Kernel* kernel_;
  Process* process_;
};

namespace {

// Ring-0 CPU work per linker invocation (the linker was a large program).
constexpr Cycles kLinkerCycles = 400;

}  // namespace

Result<uint32_t> Kernel::LinkSnapAll(Process& caller, SegNo object) {
  MX_ENTER_GATE(caller, "link_snap_all", 4);
  machine_.Charge(kLinkerCycles, "kernel_linker");
  KernelLinkEnv env(this, &caller);
  Linker linker(&env, /*validate_input=*/false);
  auto result = linker.SnapAll(object);
  kernel_faults_ += linker.wild_references();
  if (!result.ok()) {
    audit_.Record(machine_.clock().now(), caller.principal().ToString(), "link_snap_all",
                  kInvalidUid, result.status());
    return result.status();
  }
  return result->snapped;
}

Result<std::pair<SegNo, WordOffset>> Kernel::LinkSnapOne(Process& caller, SegNo object,
                                                         uint32_t index) {
  MX_ENTER_GATE(caller, "link_snap_one", 6);
  machine_.Charge(kLinkerCycles, "kernel_linker");
  KernelLinkEnv env(this, &caller);
  Linker linker(&env, false);
  auto result = linker.SnapOne(object, index);
  kernel_faults_ += linker.wild_references();
  return result;
}

Result<WordOffset> Kernel::LinkLookupSymbol(Process& caller, SegNo object,
                                            const std::string& symbol) {
  MX_ENTER_GATE(caller, "link_lookup_symbol", 6);
  machine_.Charge(kLinkerCycles / 2, "kernel_linker");
  KernelLinkEnv env(this, &caller);
  Linker linker(&env, false);
  auto result = linker.LookupSymbol(object, symbol);
  kernel_faults_ += linker.wild_references();
  return result;
}

Result<uint32_t> Kernel::LinkGetEntryBound(Process& caller, SegNo object) {
  MX_ENTER_GATE(caller, "link_get_entry_bound", 4);
  KernelLinkEnv env(this, &caller);
  Linker linker(&env, false);
  auto header = linker.Header(object);
  kernel_faults_ += linker.wild_references();
  if (!header.ok()) {
    return header.status();
  }
  return header->entry_bound;
}

Result<std::vector<std::string>> Kernel::LinkGetDefs(Process& caller, SegNo object) {
  MX_ENTER_GATE(caller, "link_get_defs", 4);
  machine_.Charge(kLinkerCycles / 2, "kernel_linker");
  KernelLinkEnv env(this, &caller);
  Linker linker(&env, false);
  auto header = linker.Header(object);
  if (!header.ok()) {
    kernel_faults_ += linker.wild_references();
    return header.status();
  }
  auto reader = [&env, object](WordOffset offset) { return env.ReadWord(object, offset); };
  auto defs = ObjectReader::ReadDefs(reader, header.value());
  kernel_faults_ += linker.wild_references();
  if (!defs.ok()) {
    return defs.status();
  }
  std::vector<std::string> names;
  names.reserve(defs->size());
  for (const SymbolDef& def : defs.value()) {
    names.push_back(def.name);
  }
  return names;
}

Status Kernel::LinkUnsnap(Process& caller, SegNo object) {
  MX_ENTER_GATE(caller, "link_unsnap", 4);
  machine_.Charge(kLinkerCycles / 2, "kernel_linker");
  KernelLinkEnv env(this, &caller);
  Linker linker(&env, false);
  auto header = linker.Header(object);
  kernel_faults_ += linker.wild_references();
  if (!header.ok()) {
    return header.status();
  }
  for (uint32_t i = 0; i < header->links_count; ++i) {
    const WordOffset at = header->links_offset + i * kLinkRecordWords + 2 * kPackedNameWords;
    Status st = KernelWriteWord(caller, object, at, 0);
    if (st != Status::kOk) {
      ++kernel_faults_;
      return st;
    }
  }
  return Status::kOk;
}

Result<uint32_t> Kernel::CombineLinkage(Process& caller, const std::vector<SegNo>& objects) {
  MX_ENTER_GATE(caller, "combine_linkage", 8);
  uint32_t snapped = 0;
  for (SegNo object : objects) {
    machine_.Charge(kLinkerCycles, "kernel_linker");
    KernelLinkEnv env(this, &caller);
    Linker linker(&env, false);
    auto result = linker.SnapAll(object);
    kernel_faults_ += linker.wild_references();
    if (!result.ok()) {
      return result.status();
    }
    snapped += result->snapped;
  }
  return snapped;
}

Status Kernel::SetLinkagePtr(Process& caller, SegNo object, WordOffset lp) {
  MX_ENTER_GATE(caller, "set_linkage_ptr", 4);
  if (!caller.kst().UidOf(object).ok()) {
    return Status::kSegmentNotKnown;
  }
  naming(caller).linkage_ptrs[object] = lp;
  return Status::kOk;
}

Result<WordOffset> Kernel::GetLinkagePtr(const Process& caller, SegNo object) const {
  auto it = legacy_naming_.find(caller.pid());
  if (it == legacy_naming_.end()) {
    return Status::kNotFound;
  }
  auto lp = it->second.linkage_ptrs.find(object);
  if (lp == it->second.linkage_ptrs.end()) {
    return Status::kNotFound;
  }
  return lp->second;
}

}  // namespace multics
