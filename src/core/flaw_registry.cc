#include "src/core/flaw_registry.h"

namespace multics {

const char* FlawClassName(FlawClass flaw_class) {
  switch (flaw_class) {
    case FlawClass::kUncheckedArgument:
      return "unchecked-argument";
    case FlawClass::kMissingCheck:
      return "missing-check";
    case FlawClass::kRaceCondition:
      return "race-condition";
    case FlawClass::kDefaultPermissive:
      return "default-permissive";
    case FlawClass::kStateConfusion:
      return "state-confusion";
    case FlawClass::kResourceExhaustion:
      return "resource-exhaustion";
  }
  return "?";
}

uint32_t FlawRegistry::Add(FlawReport report) {
  report.id = next_id_++;
  reports_.push_back(std::move(report));
  return reports_.back().id;
}

Status FlawRegistry::MarkRepaired(uint32_t id) {
  for (FlawReport& report : reports_) {
    if (report.id == id) {
      report.repaired = true;
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

uint32_t FlawRegistry::open_count() const {
  uint32_t n = 0;
  for (const FlawReport& report : reports_) {
    if (!report.repaired) {
      ++n;
    }
  }
  return n;
}

uint32_t FlawRegistry::CountByClass(FlawClass flaw_class) const {
  uint32_t n = 0;
  for (const FlawReport& report : reports_) {
    if (report.flaw_class == flaw_class) {
      ++n;
    }
  }
  return n;
}

std::vector<FlawReport> BuiltinFlawCatalog() {
  return {
      {0, "In-kernel linker trusts user-constructed object segments",
       FlawClass::kUncheckedArgument, "src/link/linker.cc",
       "A maliciously malstructured code segment makes the linker malfunction while executing "
       "in the supervisor; numerous accidents demonstrated the chances were very high.",
       "Remove the linker from the kernel (kernelized configuration): faults land in the "
       "user ring.",
       false},
      {0, "Pathname resolution in ring 0 walks user-supplied strings",
       FlawClass::kUncheckedArgument, "src/core/kernel_path.cc",
       "Long or cyclic paths and crafted names exercise complex ring-0 string code.",
       "Segment-number directory interface; resolution moves to the user ring.", false},
      {0, "Reference-name table shared between supervisor and user state",
       FlawClass::kStateConfusion, "src/core/kernel_naming.cc",
       "The old KST mixed per-user naming state with protected address-space state.",
       "Split the KST: names to the user ring, uid<->segno stays in the kernel.", false},
      {0, "Circular network buffer overwrites unconsumed input",
       FlawClass::kResourceExhaustion, "src/net/buffers.cc",
       "A burst of input silently destroys earlier messages (integrity loss by design).",
       "VM-backed infinite buffer; the standard storage system absorbs bursts.", false},
      {0, "Interrupt handlers inhabit arbitrary user processes",
       FlawClass::kStateConfusion, "src/proc/traffic_controller.cc",
       "Handler state and timing leak into whichever process was running.",
       "Dedicated handler processes; the interceptor only posts wakeups.", false},
      {0, "Replacement policy runs with full ring-0 authority",
       FlawClass::kMissingCheck, "src/mem/policy_gate.cc",
       "A policy bug (or trojan) can read or clobber any page in core.",
       "Policy/mechanism split: the policy ring sees usage bits only.", false},
      {0, "Login authenticator is a large privileged program",
       FlawClass::kMissingCheck, "src/userring/answering_service.cc",
       "The entire answering service is inside the security perimeter.",
       "Make login the ordinary protected-subsystem entry mechanism.", false},
      {0, "Per-device I/O stacks multiply kernel attack surface",
       FlawClass::kUncheckedArgument, "src/net/device_io.cc",
       "Each device discipline parses user-controlled orders in ring 0.",
       "Single network attachment as the only external I/O path.", false},
      {0, "Stepwise bootstrap executes ad-hoc privileged code each start",
       FlawClass::kStateConfusion, "src/init/bootstrap.cc",
       "Every boot re-runs complex one-shot initialization in ring 0.",
       "Generate a memory image once, in user state; loading is trivial.", false},
      {0, "Directory quota enforcement after-the-fact",
       FlawClass::kRaceCondition, "src/fs/segment_store.cc",
       "Grow-then-check patterns allow overshoot under concurrency.",
       "Quota charged atomically with the length change, before any allocation.", true},
  };
}

}  // namespace multics
