// The gate table: the registry of supervisor entry points callable from the
// user ring. This is the object experiment E1 takes its census over — the
// paper reports that removing the linker eliminated 10% of the gate entry
// points and that the linker and reference-name removals together cut the
// user-available supervisor entries by about one third.

#ifndef SRC_CORE_GATE_H_
#define SRC_CORE_GATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace multics {

enum class GateCategory {
  kAddressSpace,    // Segment-number based initiation/termination.
  kPathAddressing,  // Pathname-based initiation (removed with naming).
  kNaming,          // Reference names, search rules (removed).
  kLinker,          // Dynamic linking (removed).
  kFileSystem,      // Directory/branch manipulation.
  kSegment,         // Length, truncation, status.
  kProcess,         // Process management.
  kIpc,             // Event channels and wakeups.
  kDeviceIo,        // Per-device I/O stacks (removed).
  kNetwork,         // The single network attachment.
  kAdmin,           // Shutdown, metering, authentication.
};

const char* GateCategoryName(GateCategory category);

struct GateInfo {
  std::string name;
  GateCategory category;
  uint64_t calls = 0;
};

class GateTable {
 public:
  Status Register(const std::string& name, GateCategory category);
  bool Has(const std::string& name) const;

  // Counts a call through the gate; kNotAGate if it was never registered in
  // this configuration (i.e. the mechanism was removed from the kernel).
  Status RecordCall(const std::string& name);

  uint32_t count() const { return static_cast<uint32_t>(gates_.size()); }
  uint32_t CountByCategory(GateCategory category) const;
  uint64_t total_calls() const { return total_calls_; }

  const std::vector<GateInfo>& gates() const { return gates_; }

 private:
  std::vector<GateInfo> gates_;
  uint64_t total_calls_ = 0;
};

}  // namespace multics

#endif  // SRC_CORE_GATE_H_
