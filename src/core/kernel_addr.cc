// Address-space gates: the segment-number interface (kernelized core), the
// legacy pathname-addressing gates, and the legacy reference-name gates.
// Experiment E3's "factor of ten" lives in the contrast between these two
// halves of this file.

#include "src/core/kernel.h"

namespace multics {
namespace {

constexpr int kMaxLinkDepth = 8;

// Per-component kernel work of walking one directory level in ring 0.
constexpr Cycles kPathComponentCycles = 120;

}  // namespace

// --- Segment-number interface ------------------------------------------------------

Result<SegNo> Kernel::RootDir(Process& caller) {
  MX_ENTER_GATE(caller, "get_root_dir");
  return InitiateKnown(caller, hierarchy_.root(), "get_root_dir");
}

Result<InitiateResult> Kernel::Initiate(Process& caller, SegNo dir_segno,
                                        const std::string& name) {
  MX_ENTER_GATE(caller, "initiate_seg");
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolveDirSegno(caller, dir_segno));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  if (!dir_branch->is_directory) {
    return Status::kNotADirectory;
  }
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirStatus, "initiate_seg",
                                               machine_.clock().now(), Trusted(caller)));
  MX_ASSIGN_OR_RETURN(DirEntry entry, hierarchy_.Lookup(dir_uid, name));

  InitiateResult result;
  if (entry.is_link) {
    // The kernelized design hands the link back; the user ring chases it.
    result.is_link = true;
    result.link_target = entry.link_target;
    return result;
  }
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(entry.uid));
  result.is_directory = branch->is_directory;
  MX_ASSIGN_OR_RETURN(result.segno, InitiateKnown(caller, entry.uid, "initiate_seg"));
  if (!branch->is_directory) {
    result.granted_modes =
        monitor_.SegmentModes(*branch, caller.principal(), caller.clearance(), Trusted(caller));
  }
  return result;
}

Status Kernel::Terminate(Process& caller, SegNo segno) {
  MX_ENTER_GATE(caller, "terminate_seg");
  return ReleaseSegno(caller, segno, /*force=*/false);
}

// --- Legacy pathname addressing -------------------------------------------------------

Result<Uid> Kernel::ResolvePathChecked(Process& caller, const std::string& path_text,
                                       const char* op) {
  MX_ASSIGN_OR_RETURN(Path path, Path::Parse(path_text));
  // Ring-0 pathname walk with per-directory access checks and link chasing:
  // exactly the complex mechanism the kernelized design evicts.
  int depth = kMaxLinkDepth;
  Uid current = hierarchy_.root();
  std::vector<std::string> pending(path.components.rbegin(), path.components.rend());
  while (!pending.empty()) {
    if (--depth < 0) {
      return Status::kLinkageFault;
    }
    MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(current));
    if (!dir_branch->is_directory) {
      return Status::kNotADirectory;
    }
    machine_.Charge(kPathComponentCycles, "kernel_path_walk");
    ++address_space_ops_;
    MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                                 caller.clearance(), kDirStatus, op,
                                                 machine_.clock().now(), Trusted(caller)));
    std::string component = pending.back();
    pending.pop_back();
    MX_ASSIGN_OR_RETURN(DirEntry entry, hierarchy_.Lookup(current, component));
    if (entry.is_link) {
      MX_ASSIGN_OR_RETURN(Path target, Path::Parse(entry.link_target));
      for (auto it = target.components.rbegin(); it != target.components.rend(); ++it) {
        pending.push_back(*it);
      }
      current = hierarchy_.root();
      continue;
    }
    current = entry.uid;
  }
  return current;
}

Result<SegNo> Kernel::InitiatePath(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "initiate_path", 8);
  MX_ASSIGN_OR_RETURN(Uid uid, ResolvePathChecked(caller, path, "initiate_path"));
  MX_ASSIGN_OR_RETURN(SegNo segno, InitiateKnown(caller, uid, "initiate_path"));
  naming(caller).pathnames[segno] = path;  // The legacy KST remembers paths.
  return segno;
}

Status Kernel::TerminatePath(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "terminate_path", 8);
  MX_ASSIGN_OR_RETURN(Uid uid, ResolvePathChecked(caller, path, "terminate_path"));
  auto segno = caller.kst().SegNoOf(uid);
  if (!segno.ok()) {
    return Status::kSegmentNotKnown;
  }
  return ReleaseSegno(caller, segno.value(), /*force=*/false);
}

Result<BranchStatus> Kernel::FsStatusPath(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "status_path", 8);
  MX_ASSIGN_OR_RETURN(Uid uid, ResolvePathChecked(caller, path, "status_path"));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(uid));
  BranchStatus status;
  status.uid = uid;
  status.is_directory = branch->is_directory;
  status.pages = branch->pages;
  status.mode_string = SegmentModeString(
      monitor_.SegmentModes(*branch, caller.principal(), caller.clearance(), Trusted(caller)));
  status.label = branch->label.ToString();
  status.author = branch->author.ToString();
  return status;
}

Result<SegNo> Kernel::CreateSegmentPath(Process& caller, const std::string& path,
                                        const SegmentAttributes& attrs) {
  MX_ENTER_GATE(caller, "create_seg_path", 12);
  MX_ASSIGN_OR_RETURN(Path parsed, Path::Parse(path));
  if (parsed.IsRoot()) {
    return Status::kInvalidArgument;
  }
  MX_ASSIGN_OR_RETURN(Uid dir_uid,
                      ResolvePathChecked(caller, parsed.Parent().ToString(), "create_seg_path"));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirAppend,
                                               "create_seg_path", machine_.clock().now(), Trusted(caller)));
  SegmentAttributes effective = attrs;
  effective.author = caller.principal();
  if (params_.config.mls_enforcement) {
    effective.label = caller.clearance();  // Created objects get the subject's label.
  }
  MX_ASSIGN_OR_RETURN(Uid uid, hierarchy_.CreateSegment(dir_uid, parsed.Leaf(), effective));
  MX_ASSIGN_OR_RETURN(SegNo segno, InitiateKnown(caller, uid, "create_seg_path"));
  naming(caller).pathnames[segno] = path;
  return segno;
}

Status Kernel::DeletePath(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "delete_path", 8);
  MX_ASSIGN_OR_RETURN(Path parsed, Path::Parse(path));
  if (parsed.IsRoot()) {
    return Status::kInvalidArgument;
  }
  MX_ASSIGN_OR_RETURN(Uid dir_uid,
                      ResolvePathChecked(caller, parsed.Parent().ToString(), "delete_path"));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirModify, "delete_path",
                                               machine_.clock().now(), Trusted(caller)));
  return hierarchy_.DeleteEntry(dir_uid, parsed.Leaf());
}

Result<std::vector<std::string>> Kernel::ListPath(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "list_dir_path", 8);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolvePathChecked(caller, path, "list_dir_path"));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirStatus, "list_dir_path",
                                               machine_.clock().now(), Trusted(caller)));
  MX_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, hierarchy_.List(dir_uid));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const DirEntry& entry : entries) {
    names.push_back(entry.name);
  }
  return names;
}

Status Kernel::SetAclPath(Process& caller, const std::string& path, const AclEntry& entry) {
  MX_ENTER_GATE(caller, "set_acl_path", 10);
  MX_ASSIGN_OR_RETURN(Path parsed, Path::Parse(path));
  if (parsed.IsRoot()) {
    return Status::kInvalidArgument;
  }
  MX_ASSIGN_OR_RETURN(Uid dir_uid,
                      ResolvePathChecked(caller, parsed.Parent().ToString(), "set_acl_path"));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirModify, "set_acl_path",
                                               machine_.clock().now(), Trusted(caller)));
  MX_ASSIGN_OR_RETURN(DirEntry entry_found, hierarchy_.Lookup(dir_uid, parsed.Leaf()));
  if (entry_found.is_link) {
    return Status::kInvalidArgument;
  }
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(entry_found.uid));
  branch->acl.Set(entry);
  DisconnectSdwsFor(entry_found.uid);  // Access recomputed on next touch.
  return Status::kOk;
}

Status Kernel::ChnamePath(Process& caller, const std::string& path,
                          const std::string& new_name) {
  MX_ENTER_GATE(caller, "chname_path", 10);
  MX_ASSIGN_OR_RETURN(Path parsed, Path::Parse(path));
  if (parsed.IsRoot()) {
    return Status::kInvalidArgument;
  }
  MX_ASSIGN_OR_RETURN(Uid dir_uid,
                      ResolvePathChecked(caller, parsed.Parent().ToString(), "chname_path"));
  MX_ASSIGN_OR_RETURN(Branch * dir_branch, store_.Get(dir_uid));
  MX_RETURN_IF_ERROR(monitor_.RequireDirectory(*dir_branch, caller.principal(),
                                               caller.clearance(), kDirModify, "chname_path",
                                               machine_.clock().now(), Trusted(caller)));
  return hierarchy_.Rename(dir_uid, parsed.Leaf(), new_name);
}

Result<uint32_t> Kernel::QuotaReadPath(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "quota_read_path", 8);
  MX_ASSIGN_OR_RETURN(Uid dir_uid, ResolvePathChecked(caller, path, "quota_read_path"));
  MX_ASSIGN_OR_RETURN(Branch * branch, store_.Get(dir_uid));
  return branch->quota_pages;
}

// --- Legacy reference names -----------------------------------------------------------

Status Kernel::NameBind(Process& caller, const std::string& refname, SegNo segno) {
  MX_ENTER_GATE(caller, "bind_ref_name", 6);
  if (refname.empty() || refname.size() > kMaxNameLength) {
    return Status::kInvalidArgument;
  }
  if (!caller.kst().UidOf(segno).ok()) {
    return Status::kSegmentNotKnown;
  }
  LegacyNamingState& state = naming(caller);
  if (state.reference_names.contains(refname)) {
    return Status::kReferenceNameBound;
  }
  state.reference_names[refname] = segno;
  ++address_space_ops_;
  return Status::kOk;
}

Result<SegNo> Kernel::NameLookup(Process& caller, const std::string& refname) {
  MX_ENTER_GATE(caller, "lookup_ref_name", 6);
  LegacyNamingState& state = naming(caller);
  auto it = state.reference_names.find(refname);
  if (it == state.reference_names.end()) {
    return Status::kNoSuchReferenceName;
  }
  ++address_space_ops_;
  return it->second;
}

Status Kernel::NameUnbind(Process& caller, const std::string& refname) {
  MX_ENTER_GATE(caller, "unbind_ref_name", 6);
  ++address_space_ops_;
  return naming(caller).reference_names.erase(refname) > 0 ? Status::kOk
                                                           : Status::kNoSuchReferenceName;
}

Result<std::vector<std::string>> Kernel::NameList(Process& caller) {
  MX_ENTER_GATE(caller, "list_ref_names");
  std::vector<std::string> names;
  for (const auto& [name, segno] : naming(caller).reference_names) {
    names.push_back(name);
  }
  return names;
}

Status Kernel::SetSearchRules(Process& caller, const std::vector<std::string>& rules) {
  MX_ENTER_GATE(caller, "set_search_rules", 16);
  for (const std::string& rule : rules) {
    if (!Path::Parse(rule).ok()) {
      return Status::kInvalidArgument;
    }
  }
  naming(caller).search_rules = rules;
  return Status::kOk;
}

Result<std::vector<std::string>> Kernel::GetSearchRules(Process& caller) {
  MX_ENTER_GATE(caller, "get_search_rules");
  return naming(caller).search_rules;
}

Result<SegNo> Kernel::SearchInitiate(Process& caller, const std::string& refname) {
  MX_ENTER_GATE(caller, "search_initiate", 8);
  return SearchInitiateInternal(caller, refname);
}

Result<SegNo> Kernel::SearchInitiateInternal(Process& caller, const std::string& refname) {
  LegacyNamingState& state = naming(caller);
  // Reference names first, then the search rules, as the old supervisor did.
  if (auto it = state.reference_names.find(refname); it != state.reference_names.end()) {
    return it->second;
  }
  for (const std::string& rule : state.search_rules) {
    auto uid = ResolvePathChecked(caller, rule + ">" + refname, "search_initiate");
    if (!uid.ok()) {
      continue;
    }
    auto segno = InitiateKnown(caller, uid.value(), "search_initiate");
    if (!segno.ok()) {
      continue;  // Found but inaccessible: keep searching, as fs_search did.
    }
    state.reference_names[refname] = segno.value();
    return segno.value();
  }
  return Status::kNotFound;
}

Result<std::string> Kernel::PathnameOf(Process& caller, SegNo segno) {
  MX_ENTER_GATE(caller, "get_pathname", 4);
  LegacyNamingState& state = naming(caller);
  if (auto it = state.pathnames.find(segno); it != state.pathnames.end()) {
    return it->second;
  }
  // Fall back to a reverse walk of the hierarchy.
  auto uid = caller.kst().UidOf(segno);
  if (!uid.ok()) {
    return Status::kSegmentNotKnown;
  }
  MX_ASSIGN_OR_RETURN(Path path, hierarchy_.PathOf(uid.value()));
  return path.ToString();
}

Result<std::pair<SegNo, uint32_t>> Kernel::InitiateCountPath(Process& caller,
                                                             const std::string& path) {
  MX_ENTER_GATE(caller, "initiate_count_path", 10);
  MX_ASSIGN_OR_RETURN(Uid uid, ResolvePathChecked(caller, path, "initiate_count_path"));
  MX_ASSIGN_OR_RETURN(SegNo segno, InitiateKnown(caller, uid, "initiate_count_path"));
  naming(caller).pathnames[segno] = path;
  return std::make_pair(segno, caller.kst().size());
}

Status Kernel::TerminateFilePath(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "terminate_file_path", 8);
  MX_ASSIGN_OR_RETURN(Uid uid, ResolvePathChecked(caller, path, "terminate_file_path"));
  auto segno = caller.kst().SegNoOf(uid);
  if (!segno.ok()) {
    return Status::kSegmentNotKnown;
  }
  // terminate_file_path drops every initiation in one call.
  return ReleaseSegno(caller, segno.value(), /*force=*/true);
}

Status Kernel::TerminateRefName(Process& caller, const std::string& refname) {
  MX_ENTER_GATE(caller, "terminate_ref_name", 6);
  LegacyNamingState& state = naming(caller);
  auto it = state.reference_names.find(refname);
  if (it == state.reference_names.end()) {
    return Status::kNoSuchReferenceName;
  }
  SegNo segno = it->second;
  state.reference_names.erase(it);
  // If that was the last name for the segment, terminate it too.
  for (const auto& [name, bound] : state.reference_names) {
    if (bound == segno) {
      return Status::kOk;
    }
  }
  return ReleaseSegno(caller, segno, /*force=*/false);
}

Result<std::string> Kernel::ExpandPathname(Process& caller, const std::string& path) {
  MX_ENTER_GATE(caller, "expand_pathname", 8);
  MX_ASSIGN_OR_RETURN(Path parsed, Path::Parse(path));
  return parsed.ToString();
}

Result<std::vector<std::pair<SegNo, Uid>>> Kernel::KstStatus(Process& caller) {
  MX_ENTER_GATE(caller, "kst_status", 2);
  std::vector<std::pair<SegNo, Uid>> out;
  caller.kst().ForEach([&](SegNo segno, Uid uid) { out.emplace_back(segno, uid); });
  return out;
}

Result<Word> Kernel::DumpReadWord(Uid uid, WordOffset offset) {
  MX_ASSIGN_OR_RETURN(ActiveSegment * seg, store_.Activate(uid));
  if (PageOf(offset) >= seg->pages) {
    return Status::kOutOfRange;
  }
  MX_RETURN_IF_ERROR(page_control_->EnsureResident(seg, PageOf(offset), AccessMode::kRead));
  return machine_.core().ReadWord(seg->page_table.entries[PageOf(offset)].frame,
                                  PageOffsetOf(offset));
}

Result<Word> Kernel::KernelReadWord(Process& process, SegNo segno, WordOffset offset) {
  auto uid = process.kst().UidOf(segno);
  if (!uid.ok()) {
    return Status::kNoSuchSegment;
  }
  MX_ASSIGN_OR_RETURN(ActiveSegment * seg, store_.Activate(uid.value()));
  if (PageOf(offset) >= seg->pages) {
    return Status::kOutOfRange;
  }
  MX_RETURN_IF_ERROR(page_control_->EnsureResident(seg, PageOf(offset), AccessMode::kRead));
  machine_.Charge(machine_.costs().memory_reference, "memory_reference");
  PageTableEntry& pte = seg->page_table.entries[PageOf(offset)];
  pte.used = true;
  return machine_.core().ReadWord(pte.frame, PageOffsetOf(offset));
}

Status Kernel::KernelWriteWord(Process& process, SegNo segno, WordOffset offset, Word value) {
  auto uid = process.kst().UidOf(segno);
  if (!uid.ok()) {
    return Status::kNoSuchSegment;
  }
  MX_ASSIGN_OR_RETURN(ActiveSegment * seg, store_.Activate(uid.value()));
  if (PageOf(offset) >= seg->pages) {
    return Status::kOutOfRange;
  }
  MX_RETURN_IF_ERROR(page_control_->EnsureResident(seg, PageOf(offset), AccessMode::kWrite));
  machine_.Charge(machine_.costs().memory_reference, "memory_reference");
  PageTableEntry& pte = seg->page_table.entries[PageOf(offset)];
  pte.used = true;
  pte.modified = true;
  machine_.core().WriteWord(pte.frame, PageOffsetOf(offset), value);
  return Status::kOk;
}

}  // namespace multics
