// The legacy per-device I/O mechanisms the network attachment replaces
// (experiment E12). Each device class has its own code path, buffer
// discipline, record format, and failure modes — exactly the "large bulk of
// special mechanisms for managing the various I/O devices" the paper wants
// out of the kernel. They are fully functional here so the legacy
// configuration actually exercises them.
//
// Failure contract: every operation returns Status/Result — nothing in this
// file CHECKs, because simulated user and supervisor programs drive these
// devices with arbitrary input. Real device conditions (empty card hopper →
// kDeviceError, reading past end-of-tape → kOutOfRange) are ordinary
// returns. Injected transfer faults (src/hw/injection.h, sites kDeviceRead/
// kDeviceWrite) are retried up to kMaxPeripheralAttempts times with the
// retry cycles charged to "fault_recovery"; a fault that survives the
// retries is returned to the caller, who is expected to degrade (abandon
// the I/O, report the error) rather than crash.

#ifndef SRC_NET_DEVICE_IO_H_
#define SRC_NET_DEVICE_IO_H_

#include <deque>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hw/machine.h"

namespace multics {

// Peripheral transfers are attempted at most this many times.
inline constexpr int kMaxPeripheralAttempts = 3;

// A typewriter line: character-at-a-time input assembled into lines, with
// echo and erase/kill processing done in the supervisor.
class TtyLine {
 public:
  TtyLine(Machine* machine, InterruptLine line);

  // Remote keyboard types a character ('#' erases, '@' kills the line, as in
  // early Multics typewriter conventions).
  void TypeCharacter(char c);

  // Supervisor side: a completed input line, if any.
  Result<std::string> ReadLine();
  // Output with delay per character (the device is slow).
  Status WriteString(const std::string& text);

  const std::string& echoed() const { return echoed_; }
  uint64_t lines_assembled() const { return lines_assembled_; }

 private:
  Machine* machine_;
  InterruptLine line_;
  std::string partial_;
  std::deque<std::string> completed_;
  std::string echoed_;
  uint64_t lines_assembled_ = 0;
};

// A card reader: fixed 80-column records, end-of-deck condition.
class CardReader {
 public:
  explicit CardReader(Machine* machine);

  void LoadDeck(const std::vector<std::string>& cards);
  // Returns the next card padded/truncated to exactly 80 columns.
  Result<std::string> ReadCard();
  bool EndOfDeck() const { return deck_.empty(); }

 private:
  Machine* machine_;
  std::deque<std::string> deck_;
};

// A line printer: 136-column lines, page structure with 60 lines per page.
class LinePrinter {
 public:
  explicit LinePrinter(Machine* machine);

  Status PrintLine(const std::string& text);  // Truncates at 136 columns.
  Status EjectPage();

  uint64_t lines_printed() const { return lines_printed_; }
  uint64_t pages() const { return pages_; }
  const std::vector<std::string>& output() const { return output_; }

 private:
  Machine* machine_;
  std::vector<std::string> output_;
  uint64_t lines_printed_ = 0;
  uint64_t pages_ = 1;
  uint32_t line_on_page_ = 0;
};

// A tape drive: sequential records with positioning.
class TapeDrive {
 public:
  explicit TapeDrive(Machine* machine);

  Status WriteRecord(const std::string& data);  // At current position; truncates tail.
  Result<std::string> ReadRecord();             // kOutOfRange at end of tape.
  Status Rewind();
  Status SkipRecords(uint32_t n);

  uint32_t position() const { return position_; }
  uint32_t record_count() const { return static_cast<uint32_t>(records_.size()); }

 private:
  Machine* machine_;
  std::vector<std::string> records_;
  uint32_t position_ = 0;
};

}  // namespace multics

#endif  // SRC_NET_DEVICE_IO_H_
