// The ARPA-network attachment. The paper proposes replacing every
// special-purpose external I/O mechanism (terminals, cards, printers, tapes)
// with this single mechanism: "Using network technology to provide the only
// path for external I/O to Multics appears feasible."
//
// Connections carry byte-string messages both ways with a latency model; the
// remote end is simulated (traffic generators, examples). Inbound data lands
// in a per-connection InputBuffer (circular or infinite — experiment E5) and
// asserts the attachment's interrupt line.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/hw/machine.h"
#include "src/net/buffers.h"

namespace multics {

using ConnId = uint64_t;

class NetworkAttachment {
 public:
  struct Config {
    Cycles packet_latency = 500;
    InterruptLine interrupt_line = 8;
  };

  NetworkAttachment(Machine* machine, Config config);

  // Opens a connection to `remote` with the supplied input buffer.
  Result<ConnId> Open(const std::string& remote, std::unique_ptr<InputBuffer> buffer);
  Status Close(ConnId conn);
  bool IsOpen(ConnId conn) const { return connections_.contains(conn); }

  // Local side.
  Status Send(ConnId conn, const std::string& data);
  Result<NetMessage> Receive(ConnId conn);
  Result<const InputBuffer*> BufferOf(ConnId conn) const;

  // Remote side (simulation): data arrives after the latency, is enqueued,
  // and the interrupt line is asserted.
  Status InjectFromRemote(ConnId conn, const std::string& data);

  // Sink for locally-sent data once it "reaches" the remote end.
  void SetRemoteSink(ConnId conn, std::function<void(const std::string&)> sink);

  uint64_t packets_in() const { return packets_in_; }
  uint64_t packets_out() const { return packets_out_; }
  uint64_t total_lost() const;

 private:
  struct Connection {
    std::string remote;
    std::unique_ptr<InputBuffer> buffer;
    std::function<void(const std::string&)> remote_sink;
    uint64_t next_sequence = 0;
  };

  Machine* machine_;
  Config config_;
  std::unordered_map<ConnId, Connection> connections_;
  ConnId next_conn_ = 1;
  uint64_t packets_in_ = 0;
  uint64_t packets_out_ = 0;
  uint64_t lost_on_closed_ = 0;
};

}  // namespace multics

#endif  // SRC_NET_NETWORK_H_
