// Network input buffering: the two designs the paper compares.
//
//   "A new buffering strategy for input from the network has been devised
//    which, by utilizing the virtual memory, provides a core resident buffer
//    which appears to be of infinite length. The infinite buffer scheme is
//    much simpler than the old circular buffer which had to be used over and
//    over again, with attendant problems of old messages not being removed
//    before a complete circuit of the buffer was made."
//
// CircularBuffer is the old scheme: a fixed ring of words that wraps; when a
// complete circuit catches up with unconsumed input, old messages are
// overwritten and lost. InfiniteBuffer is the new scheme: an append-only
// buffer whose backing store grows page by page through the standard virtual
// memory (a grow hook supplied by the kernel), so nothing is ever
// overwritten.

#ifndef SRC_NET_BUFFERS_H_
#define SRC_NET_BUFFERS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hw/word.h"

namespace multics {

struct NetMessage {
  uint64_t sequence = 0;
  std::string data;
};

class InputBuffer {
 public:
  virtual ~InputBuffer() = default;
  virtual const char* name() const = 0;

  // Producer side (the network attachment).
  virtual Status Enqueue(const NetMessage& message) = 0;
  // Consumer side. kNotFound when empty.
  virtual Result<NetMessage> Dequeue() = 0;

  virtual size_t queued() const = 0;
  // Messages destroyed by wraparound before being read (circular only).
  virtual uint64_t messages_lost() const = 0;
  // Current resident footprint in pages.
  virtual uint32_t resident_pages() const = 0;
};

// The old scheme. Capacity is in words; each message occupies a one-word
// header (length) plus its data rounded up to words. On overflow the ring
// advances over the oldest unread messages, losing them.
class CircularBuffer : public InputBuffer {
 public:
  explicit CircularBuffer(uint32_t capacity_words);

  const char* name() const override { return "circular"; }
  Status Enqueue(const NetMessage& message) override;
  Result<NetMessage> Dequeue() override;
  size_t queued() const override { return messages_.size(); }
  uint64_t messages_lost() const override { return lost_; }
  uint32_t resident_pages() const override {
    return (capacity_words_ + kPageWords - 1) / kPageWords;
  }

 private:
  uint32_t WordsFor(const NetMessage& message) const {
    return 1 + static_cast<uint32_t>((message.data.size() + 7) / 8);
  }

  uint32_t capacity_words_;
  uint32_t used_words_ = 0;
  std::deque<NetMessage> messages_;       // Parallel view of ring contents.
  std::deque<uint32_t> message_words_;
  uint64_t lost_ = 0;
};

// The new scheme: appears infinite; consumed pages are returned to the
// virtual memory and fresh ones faulted in on demand via the grow hook.
class InfiniteBuffer : public InputBuffer {
 public:
  // `grow` is called with the new total page count whenever the buffer needs
  // another backing page; it returns non-OK only if the virtual memory
  // itself is exhausted (segment max length).
  explicit InfiniteBuffer(std::function<Status(uint32_t pages)> grow);

  const char* name() const override { return "infinite"; }
  Status Enqueue(const NetMessage& message) override;
  Result<NetMessage> Dequeue() override;
  size_t queued() const override { return messages_.size(); }
  uint64_t messages_lost() const override { return 0; }
  uint32_t resident_pages() const override;

  uint64_t total_pages_grown() const { return pages_grown_; }

 private:
  std::function<Status(uint32_t)> grow_;
  std::deque<NetMessage> messages_;
  uint64_t head_words_ = 0;   // Words consumed since creation.
  uint64_t tail_words_ = 0;   // Words appended since creation.
  uint64_t pages_grown_ = 0;
};

}  // namespace multics

#endif  // SRC_NET_BUFFERS_H_
