#include "src/net/network.h"

namespace multics {

NetworkAttachment::NetworkAttachment(Machine* machine, Config config)
    : machine_(machine), config_(config) {}

Result<ConnId> NetworkAttachment::Open(const std::string& remote,
                                       std::unique_ptr<InputBuffer> buffer) {
  if (buffer == nullptr) {
    return Status::kInvalidArgument;
  }
  ConnId conn = next_conn_++;
  Connection connection;
  connection.remote = remote;
  connection.buffer = std::move(buffer);
  connections_[conn] = std::move(connection);
  return conn;
}

Status NetworkAttachment::Close(ConnId conn) {
  return connections_.erase(conn) > 0 ? Status::kOk : Status::kConnectionClosed;
}

Status NetworkAttachment::Send(ConnId conn, const std::string& data) {
  auto it = connections_.find(conn);
  if (it == connections_.end()) {
    return Status::kConnectionClosed;
  }
  ++packets_out_;
  machine_->Charge(machine_->costs().instruction * 20, "net_cpu");
  machine_->meter().Emit(TraceEventKind::kPacketOut, "packet_out", conn);
  // Deliver to the remote sink after the wire latency.
  auto sink = it->second.remote_sink;
  if (sink) {
    machine_->events().ScheduleAfter(config_.packet_latency, [sink, data] { sink(data); });
  }
  return Status::kOk;
}

Result<NetMessage> NetworkAttachment::Receive(ConnId conn) {
  auto it = connections_.find(conn);
  if (it == connections_.end()) {
    return Status::kConnectionClosed;
  }
  machine_->Charge(machine_->costs().instruction * 10, "net_cpu");
  return it->second.buffer->Dequeue();
}

Result<const InputBuffer*> NetworkAttachment::BufferOf(ConnId conn) const {
  auto it = connections_.find(conn);
  if (it == connections_.end()) {
    return Status::kConnectionClosed;
  }
  return const_cast<const InputBuffer*>(it->second.buffer.get());
}

Status NetworkAttachment::InjectFromRemote(ConnId conn, const std::string& data) {
  if (!connections_.contains(conn)) {
    return Status::kConnectionClosed;
  }
  machine_->events().ScheduleAfter(config_.packet_latency, [this, conn, data] {
    // Delivery runs off the event queue under whatever context pumped it;
    // the span keeps arrival + interrupt assertion attributed as one unit.
    TraceSpan deliver_span(&machine_->meter(), "net/deliver", conn);
    auto it = connections_.find(conn);
    if (it == connections_.end()) {
      ++lost_on_closed_;
      return;
    }
    NetMessage message;
    message.sequence = it->second.next_sequence++;
    message.data = data;
    (void)it->second.buffer->Enqueue(message);
    ++packets_in_;
    machine_->meter().Emit(TraceEventKind::kPacketIn, "packet_in", conn);
    (void)machine_->interrupts().Assert(config_.interrupt_line, conn);
  });
  return Status::kOk;
}

void NetworkAttachment::SetRemoteSink(ConnId conn, std::function<void(const std::string&)> sink) {
  auto it = connections_.find(conn);
  if (it != connections_.end()) {
    it->second.remote_sink = std::move(sink);
  }
}

uint64_t NetworkAttachment::total_lost() const {
  uint64_t lost = lost_on_closed_;
  for (const auto& [conn, connection] : connections_) {
    lost += connection.buffer->messages_lost();
  }
  return lost;
}

}  // namespace multics
