#include "src/net/buffers.h"

namespace multics {

// --- CircularBuffer -------------------------------------------------------------

CircularBuffer::CircularBuffer(uint32_t capacity_words) : capacity_words_(capacity_words) {}

Status CircularBuffer::Enqueue(const NetMessage& message) {
  const uint32_t words = WordsFor(message);
  if (words > capacity_words_) {
    return Status::kBufferOverrun;  // Cannot ever fit.
  }
  // Wraparound: the write pointer advances over the oldest unread messages.
  while (used_words_ + words > capacity_words_ && !messages_.empty()) {
    used_words_ -= message_words_.front();
    messages_.pop_front();
    message_words_.pop_front();
    ++lost_;
  }
  messages_.push_back(message);
  message_words_.push_back(words);
  used_words_ += words;
  return Status::kOk;
}

Result<NetMessage> CircularBuffer::Dequeue() {
  if (messages_.empty()) {
    return Status::kNotFound;
  }
  NetMessage message = messages_.front();
  messages_.pop_front();
  used_words_ -= message_words_.front();
  message_words_.pop_front();
  return message;
}

// --- InfiniteBuffer -------------------------------------------------------------

InfiniteBuffer::InfiniteBuffer(std::function<Status(uint32_t)> grow) : grow_(std::move(grow)) {}

Status InfiniteBuffer::Enqueue(const NetMessage& message) {
  const uint64_t words = 1 + (message.data.size() + 7) / 8;
  const uint64_t new_tail = tail_words_ + words;
  const uint32_t pages_needed = static_cast<uint32_t>((new_tail + kPageWords - 1) / kPageWords);
  const uint32_t pages_have = static_cast<uint32_t>((tail_words_ + kPageWords - 1) / kPageWords);
  if (pages_needed > pages_have && grow_) {
    MX_RETURN_IF_ERROR(grow_(pages_needed));
    pages_grown_ += pages_needed - pages_have;
  }
  tail_words_ = new_tail;
  messages_.push_back(message);
  return Status::kOk;
}

Result<NetMessage> InfiniteBuffer::Dequeue() {
  if (messages_.empty()) {
    return Status::kNotFound;
  }
  NetMessage message = messages_.front();
  messages_.pop_front();
  head_words_ += 1 + (message.data.size() + 7) / 8;
  return message;
}

uint32_t InfiniteBuffer::resident_pages() const {
  // Pages between the read and write pointers; consumed pages are reclaimed
  // by the virtual memory.
  const uint64_t head_page = head_words_ / kPageWords;
  const uint64_t tail_page = (tail_words_ + kPageWords - 1) / kPageWords;
  return static_cast<uint32_t>(tail_page - head_page);
}

}  // namespace multics
