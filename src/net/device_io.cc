#include "src/net/device_io.h"

namespace multics {
namespace {

constexpr Cycles kTtyCharCycles = 50;
constexpr Cycles kCardCycles = 400;
constexpr Cycles kPrintLineCycles = 300;
constexpr Cycles kTapeRecordCycles = 800;
constexpr uint32_t kCardColumns = 80;
constexpr uint32_t kPrinterColumns = 136;
constexpr uint32_t kLinesPerPage = 60;

// Consults the injector for one peripheral transfer and retries transient
// faults in place, charging each retry to "fault_recovery". Returns the
// surviving fault (kOk if the transfer eventually went through).
Status ConsultPeripheral(Machine* machine, InjectSite site, const char* name,
                         uint64_t detail, Cycles retry_cost) {
  if (machine->injector() == nullptr) {
    return Status::kOk;
  }
  Status fault = Status::kOk;
  for (int attempt = 1; attempt <= kMaxPeripheralAttempts; ++attempt) {
    InjectionDecision d = machine->ConsultInjector(site, name, detail);
    fault = d.fault;
    if (fault == Status::kOk) {
      return Status::kOk;
    }
    if (attempt < kMaxPeripheralAttempts) {
      machine->Charge(retry_cost, "fault_recovery");
    }
  }
  return fault;
}

}  // namespace

// --- TtyLine --------------------------------------------------------------------

TtyLine::TtyLine(Machine* machine, InterruptLine line) : machine_(machine), line_(line) {}

void TtyLine::TypeCharacter(char c) {
  machine_->Charge(kTtyCharCycles, "device_io");
  if (c == '#') {
    // Erase: delete the previous character.
    if (!partial_.empty()) {
      partial_.pop_back();
    }
    echoed_ += c;
    return;
  }
  if (c == '@') {
    // Kill: discard the whole partial line.
    partial_.clear();
    echoed_ += c;
    return;
  }
  echoed_ += c;
  if (c == '\n') {
    completed_.push_back(partial_);
    partial_.clear();
    ++lines_assembled_;
    (void)machine_->interrupts().Assert(line_, lines_assembled_);
    return;
  }
  partial_ += c;
}

Result<std::string> TtyLine::ReadLine() {
  if (completed_.empty()) {
    return Status::kNotFound;
  }
  std::string out = completed_.front();
  completed_.pop_front();
  return out;
}

Status TtyLine::WriteString(const std::string& text) {
  MX_RETURN_IF_ERROR(ConsultPeripheral(machine_, InjectSite::kDeviceWrite, "tty", line_,
                                       kTtyCharCycles));
  machine_->Charge(kTtyCharCycles * text.size(), "device_io");
  echoed_ += text;
  return Status::kOk;
}

// --- CardReader -----------------------------------------------------------------

CardReader::CardReader(Machine* machine) : machine_(machine) {}

void CardReader::LoadDeck(const std::vector<std::string>& cards) {
  for (const std::string& card : cards) {
    deck_.push_back(card);
  }
}

Result<std::string> CardReader::ReadCard() {
  if (deck_.empty()) {
    return Status::kDeviceError;  // Hopper empty.
  }
  MX_RETURN_IF_ERROR(ConsultPeripheral(machine_, InjectSite::kDeviceRead, "card-reader",
                                       deck_.size(), kCardCycles));
  machine_->Charge(kCardCycles, "device_io");
  std::string card = deck_.front();
  deck_.pop_front();
  card.resize(kCardColumns, ' ');
  return card;
}

// --- LinePrinter ----------------------------------------------------------------

LinePrinter::LinePrinter(Machine* machine) : machine_(machine) {}

Status LinePrinter::PrintLine(const std::string& text) {
  MX_RETURN_IF_ERROR(ConsultPeripheral(machine_, InjectSite::kDeviceWrite, "printer",
                                       lines_printed_, kPrintLineCycles));
  machine_->Charge(kPrintLineCycles, "device_io");
  std::string line = text.substr(0, kPrinterColumns);
  output_.push_back(line);
  ++lines_printed_;
  if (++line_on_page_ >= kLinesPerPage) {
    return EjectPage();
  }
  return Status::kOk;
}

Status LinePrinter::EjectPage() {
  machine_->Charge(kPrintLineCycles * 3, "device_io");
  line_on_page_ = 0;
  ++pages_;
  return Status::kOk;
}

// --- TapeDrive ------------------------------------------------------------------

TapeDrive::TapeDrive(Machine* machine) : machine_(machine) {}

Status TapeDrive::WriteRecord(const std::string& data) {
  MX_RETURN_IF_ERROR(ConsultPeripheral(machine_, InjectSite::kDeviceWrite, "tape", position_,
                                       kTapeRecordCycles));
  machine_->Charge(kTapeRecordCycles, "device_io");
  // Writing in the middle truncates everything after, as real tape does.
  records_.resize(position_);
  records_.push_back(data);
  ++position_;
  return Status::kOk;
}

Result<std::string> TapeDrive::ReadRecord() {
  if (position_ >= records_.size()) {
    return Status::kOutOfRange;
  }
  MX_RETURN_IF_ERROR(ConsultPeripheral(machine_, InjectSite::kDeviceRead, "tape", position_,
                                       kTapeRecordCycles));
  machine_->Charge(kTapeRecordCycles, "device_io");
  return records_[position_++];
}

Status TapeDrive::Rewind() {
  machine_->Charge(kTapeRecordCycles * 4, "device_io");
  position_ = 0;
  return Status::kOk;
}

Status TapeDrive::SkipRecords(uint32_t n) {
  machine_->Charge(kTapeRecordCycles, "device_io");
  if (position_ + n > records_.size()) {
    return Status::kOutOfRange;
  }
  position_ += n;
  return Status::kOk;
}

}  // namespace multics
