// The configuration-level static certifier: given a constructed Kernel (its
// machine, gate table, segment store, hierarchy, and processes), verify the
// paper's certification claims *without executing anything* — the review
// activity's audit of the descriptor and gate configuration, mechanized.
//
// Claims checked (one AuditClaim per claim; see docs/AUDIT.md for the
// paper-to-check map):
//   * ring brackets well-formed and monotonic on every branch and SDW;
//   * connected SDW brackets identical to the owning branch's;
//   * the gate bit only with a nonzero entry bound at a real ring boundary;
//   * the gate table exactly the configuration's gate census;
//   * every SDW's modes derivable from the segment's ACL ∧ MLS label (a mode
//     the lattice alone forbids is flagged separately: that is a reachable
//     read-up / write-down);
//   * descriptor segment ↔ KST ↔ segment store agreement;
//   * no orphan branches, no branch catalogued under two directories;
//   * the lock trace of the run so far respects the partitioned-lock
//     hierarchy: every recorded acquisition edge is strictly
//     level-increasing and no violation was observed;
//   * scheduler state is isolated from protection state: every process's
//     work class and feedback level are well-formed, and permuting them
//     changes no process's derivable access modes — demotion, promotion,
//     and work-class reassignment may reorder execution, never widen it.
//
// Like src/inject, this module links *against* the kernel; no kernel library
// links it back (enforced by mx_lint's layering pass).

#ifndef SRC_AUDIT_STATIC_CERTIFIER_H_
#define SRC_AUDIT_STATIC_CERTIFIER_H_

#include "src/audit_static/report.h"
#include "src/core/kernel.h"

namespace multics::audit_static {

class StaticCertifier {
 public:
  explicit StaticCertifier(Kernel* kernel) : kernel_(kernel) {}

  // Runs every pass. Deterministic: findings are ordered by pass, then by
  // pid / uid / segment number.
  AuditReport Certify();

  // Individual passes, exposed so tests can scope a fixture to one claim.
  void CheckRingBrackets(AuditReport* report);
  void CheckGates(AuditReport* report);
  void CheckAccessDerivation(AuditReport* report);
  void CheckDsegConsistency(AuditReport* report);
  void CheckHierarchyReachability(AuditReport* report);
  void CheckLockOrder(AuditReport* report);
  void CheckSchedulerIsolation(AuditReport* report);

 private:
  Kernel* kernel_;
};

}  // namespace multics::audit_static

#endif  // SRC_AUDIT_STATIC_CERTIFIER_H_
