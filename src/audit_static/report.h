// Findings and reports for the configuration-level static certifier.
//
// Each finding records one violated certification claim — the paper's review
// activity made mechanical. A clean report over a constructed machine is the
// static half of the argument that "correctness is necessary and sufficient"
// to enforce the security model; the dynamic half is the test suite.

#ifndef SRC_AUDIT_STATIC_REPORT_H_
#define SRC_AUDIT_STATIC_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/branch.h"
#include "src/hw/word.h"
#include "src/proc/ipc.h"

namespace multics::audit_static {

// The certification claims, one per paper-derived invariant the certifier
// discharges (docs/AUDIT.md maps each to its source in the paper).
enum class AuditClaim : uint8_t {
  kRingBracketWellFormed,   // Brackets monotonic (r1 <= r2 <= r3) everywhere.
  kSdwBracketConsistency,   // Connected SDW brackets match the branch.
  kGateDiscipline,          // Gate bit only with entries and a ring boundary.
  kGateRegistry,            // Gate table == the configuration's gate census.
  kAccessDerivable,         // SDW modes ⊆ ACL∧MLS-derived modes.
  kMlsWidening,             // An SDW mode the lattice alone forbids.
  kDsegStoreConsistency,    // Descriptor segment ↔ KST ↔ segment store agree.
  kOrphanSegment,           // Branch reachable from no directory.
  kMultiParentSegment,      // Branch catalogued in more than one directory.
  kLockOrder,               // Observed lock acquisition violates the hierarchy.
  kSchedulerIsolation,      // Scheduler state is malformed, or permuting it
                            // changes some process's derivable access.
};

const char* AuditClaimName(AuditClaim claim);

struct AuditFinding {
  AuditClaim claim;
  std::string subject;   // Gate name, pathname-ish hint, or "pid N segno M".
  Uid uid = kInvalidUid;
  ProcessId pid = 0;     // 0 when not process-scoped.
  SegNo segno = 0;
  std::string message;
};

// A concrete (process, segment, mode) witness for a failed SDW-derivability
// claim: WHO holds WHAT that ACL ∧ MLS do not derive. Shared between the
// static certifier's kAccessDerivable/kMlsWidening findings and the model
// checker's counterexample traces (src/modelcheck/), so a violation reads
// identically whether a sampled audit or the exhaustive enumeration found it.
struct AccessWitness {
  ProcessId pid = 0;
  std::string principal;   // person.project.tag of the holder.
  SegNo segno = 0;
  Uid uid = kInvalidUid;
  uint8_t held = 0;        // Modes the descriptor grants.
  uint8_t derived = 0;     // Modes ACL ∧ MLS derive.
  bool mls = false;        // Some excess bit is one the lattice alone forbids.
};

// "pid 3 (Doe.Students.a) segno 65 uid 9 holds rw- but ACL ∧ MLS derive r--
//  (excess -w-): reachable lattice violation"
std::string FormatAccessWitness(const AccessWitness& witness);

struct AuditReport {
  std::vector<AuditFinding> findings;

  // Coverage counters: a clean report is only meaningful if the sweep
  // actually examined something.
  uint64_t processes_examined = 0;
  uint64_t sdws_examined = 0;
  uint64_t branches_examined = 0;
  uint64_t gates_examined = 0;

  bool clean() const { return findings.empty(); }
  uint64_t CountForClaim(AuditClaim claim) const;

  std::string ToString() const;
  std::string ToJson() const;
};

}  // namespace multics::audit_static

#endif  // SRC_AUDIT_STATIC_REPORT_H_
