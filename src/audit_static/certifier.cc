#include "src/audit_static/certifier.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace multics::audit_static {

namespace {

// Deterministic process sweep order (the traffic controller's map is
// unordered).
std::vector<Process*> ProcessesSorted(Kernel* kernel) {
  std::vector<Process*> processes;
  kernel->traffic().ForEachProcess([&](Process& p) { processes.push_back(&p); });
  std::sort(processes.begin(), processes.end(),
            [](const Process* a, const Process* b) { return a->pid() < b->pid(); });
  return processes;
}

std::vector<Uid> BranchUidsSorted(Kernel* kernel) {
  std::vector<Uid> uids;
  kernel->store().ForEachBranch([&](const Branch& b) { uids.push_back(b.uid); });
  std::sort(uids.begin(), uids.end());
  return uids;
}

std::string PidSegno(const Process& p, SegNo segno) {
  return "pid " + std::to_string(p.pid()) + " segno " + std::to_string(segno);
}

}  // namespace

// --- Claim 1: ring brackets well-formed -------------------------------------

void StaticCertifier::CheckRingBrackets(AuditReport* report) {
  for (Uid uid : BranchUidsSorted(kernel_)) {
    const Branch& branch = **kernel_->store().Get(uid);
    ++report->branches_examined;
    if (!branch.brackets.Valid()) {
      report->findings.push_back(
          {AuditClaim::kRingBracketWellFormed, "branch", uid, 0, 0,
           "ring brackets " + branch.brackets.ToString() +
               " are not monotonic (need r1 <= r2 <= r3)"});
    }
  }
  for (Process* p : ProcessesSorted(kernel_)) {
    ++report->processes_examined;
    for (SegNo segno = 0; segno < kMaxSegments; ++segno) {
      const SegmentDescriptor& sdw = p->dseg().Get(segno);
      if (!sdw.valid) continue;
      ++report->sdws_examined;
      if (!sdw.brackets.Valid()) {
        report->findings.push_back(
            {AuditClaim::kRingBracketWellFormed, PidSegno(*p, segno), sdw.uid, p->pid(),
             segno,
             "SDW ring brackets " + sdw.brackets.ToString() + " are not monotonic"});
        continue;
      }
      // Consistency with the owning branch (directories deliberately carry
      // kernel-private brackets in the SDW; skip them).
      if (sdw.uid == kInvalidUid || !kernel_->store().Exists(sdw.uid)) {
        continue;  // Claim 4 reports the dangling descriptor.
      }
      const Branch& branch = **kernel_->store().Get(sdw.uid);
      if (!branch.is_directory && !(sdw.brackets == branch.brackets)) {
        report->findings.push_back(
            {AuditClaim::kSdwBracketConsistency, PidSegno(*p, segno), sdw.uid, p->pid(),
             segno,
             "SDW brackets " + sdw.brackets.ToString() + " differ from branch brackets " +
                 branch.brackets.ToString()});
      }
    }
  }
}

// --- Claim 2: gate discipline and gate registry -----------------------------

void StaticCertifier::CheckGates(AuditReport* report) {
  // (a) Storage-level gates: the gate bit is meaningful only with a nonzero
  // entry bound and a real ring boundary to cross (r3 > r2); anything else
  // is an entry point no gate list accounts for.
  for (Uid uid : BranchUidsSorted(kernel_)) {
    const Branch& branch = **kernel_->store().Get(uid);
    if (!branch.gate) continue;
    if (branch.gate_entries == 0) {
      report->findings.push_back(
          {AuditClaim::kGateDiscipline, "branch", uid, 0, 0,
           "gate bit set with a zero entry bound: unauditable entry surface"});
    } else if (branch.brackets.gate_limit <= branch.brackets.read_limit) {
      report->findings.push_back(
          {AuditClaim::kGateDiscipline, "branch", uid, 0, 0,
           "gate bit set but brackets " + branch.brackets.ToString() +
               " admit no inward call (r3 <= r2): gate at a non-boundary"});
    }
  }

  // (b) The kernel's own gate surface must be exactly the configuration's
  // census — no phantom entry points, no missing registrations.
  std::map<std::string, GateCategory> expected;
  for (const GateSpec& spec : GateCensus(kernel_->config())) {
    expected.emplace(spec.name, spec.category);
  }
  std::set<std::string> registered;
  for (const GateInfo& gate : kernel_->gates().gates()) {
    ++report->gates_examined;
    registered.insert(gate.name);
    auto it = expected.find(gate.name);
    if (it == expected.end()) {
      report->findings.push_back(
          {AuditClaim::kGateRegistry, gate.name, kInvalidUid, 0, 0,
           "gate registered in the live table but absent from the configuration's census"});
    } else if (it->second != gate.category) {
      report->findings.push_back(
          {AuditClaim::kGateRegistry, gate.name, kInvalidUid, 0, 0,
           "gate category disagrees with the census"});
    }
  }
  for (const auto& [name, category] : expected) {
    (void)category;
    if (!registered.contains(name)) {
      report->findings.push_back(
          {AuditClaim::kGateRegistry, name, kInvalidUid, 0, 0,
           "gate in the configuration's census but missing from the live table"});
    }
  }
}

// --- Claim 3: every SDW mode derivable from ACL ∧ MLS -----------------------

void StaticCertifier::CheckAccessDerivation(AuditReport* report) {
  ReferenceMonitor& monitor = kernel_->monitor();
  for (Process* p : ProcessesSorted(kernel_)) {
    const bool trusted = Kernel::Trusted(*p);
    for (SegNo segno = 0; segno < kMaxSegments; ++segno) {
      const SegmentDescriptor& sdw = p->dseg().Get(segno);
      if (!sdw.valid || sdw.uid == kInvalidUid || !kernel_->store().Exists(sdw.uid)) {
        continue;
      }
      const Branch& branch = **kernel_->store().Get(sdw.uid);
      if (branch.is_directory) {
        // Directories are opaque handles in the user ring: a descriptor that
        // grants direct modes on one bypasses the per-directory gate.
        if (sdw.read || sdw.write || sdw.execute) {
          report->findings.push_back(
              {AuditClaim::kAccessDerivable, PidSegno(*p, segno), sdw.uid, p->pid(), segno,
               "descriptor grants direct modes on a directory"});
        }
        continue;
      }
      const uint8_t derived =
          monitor.SegmentModes(branch, p->principal(), p->clearance(), trusted);
      uint8_t held = 0;
      if (sdw.read) held |= kModeRead;
      if (sdw.write) held |= kModeWrite;
      if (sdw.execute) held |= kModeExecute;
      const uint8_t excess = held & static_cast<uint8_t>(~derived);
      if (excess == 0) continue;
      // Classify: a bit the lattice alone would strip is a reachable
      // read-up / write-down; anything else is an ACL mismatch.
      bool mls = false;
      if (monitor.mls_enforced() && !trusted) {
        if ((excess & (kModeRead | kModeExecute)) != 0 &&
            !MlsCanRead(p->clearance(), branch.label)) {
          mls = true;
        }
        if ((excess & kModeWrite) != 0 && !MlsCanWrite(p->clearance(), branch.label)) {
          mls = true;
        }
      }
      const AccessWitness witness{p->pid(),  p->principal().ToString(), segno, sdw.uid,
                                  held,      derived,                   mls};
      report->findings.push_back(
          {mls ? AuditClaim::kMlsWidening : AuditClaim::kAccessDerivable,
           PidSegno(*p, segno), sdw.uid, p->pid(), segno, FormatAccessWitness(witness)});
    }
  }
}

// --- Claim 4: descriptor segment ↔ KST ↔ segment store ----------------------

void StaticCertifier::CheckDsegConsistency(AuditReport* report) {
  for (Process* p : ProcessesSorted(kernel_)) {
    for (SegNo segno = 0; segno < kMaxSegments; ++segno) {
      const SegmentDescriptor& sdw = p->dseg().Get(segno);
      if (!sdw.valid) continue;
      if (sdw.uid == kInvalidUid) {
        report->findings.push_back(
            {AuditClaim::kDsegStoreConsistency, PidSegno(*p, segno), kInvalidUid, p->pid(),
             segno, "valid SDW with no owning segment UID"});
        continue;
      }
      if (!kernel_->store().Exists(sdw.uid)) {
        report->findings.push_back(
            {AuditClaim::kDsegStoreConsistency, PidSegno(*p, segno), sdw.uid, p->pid(),
             segno, "valid SDW names a segment the store no longer holds"});
        continue;
      }
      auto kst_uid = p->kst().UidOf(segno);
      if (!kst_uid.ok()) {
        report->findings.push_back(
            {AuditClaim::kDsegStoreConsistency, PidSegno(*p, segno), sdw.uid, p->pid(),
             segno, "valid SDW for a segment number the KST does not know"});
      } else if (kst_uid.value() != sdw.uid) {
        report->findings.push_back(
            {AuditClaim::kDsegStoreConsistency, PidSegno(*p, segno), sdw.uid, p->pid(),
             segno,
             "SDW uid and KST uid disagree (KST says " + std::to_string(kst_uid.value()) +
                 ")"});
      }
    }
    // Reverse direction: everything the KST claims known must still exist.
    std::vector<std::pair<SegNo, Uid>> known;
    p->kst().ForEach([&](SegNo segno, Uid uid) { known.emplace_back(segno, uid); });
    std::sort(known.begin(), known.end());
    for (const auto& [segno, uid] : known) {
      if (!kernel_->store().Exists(uid)) {
        report->findings.push_back(
            {AuditClaim::kDsegStoreConsistency, PidSegno(*p, segno), uid, p->pid(), segno,
             "KST entry names a segment the store no longer holds"});
      }
    }
  }
}

// --- Claim 5: reachability — no orphans, no double catalogue entries --------

void StaticCertifier::CheckHierarchyReachability(AuditReport* report) {
  Hierarchy& hierarchy = kernel_->hierarchy();
  // Walk the catalogue from the root; record, per uid, the set of directories
  // holding an entry for it (several names in ONE directory are legal
  // additional names; entries in TWO directories are a double mapping).
  std::map<Uid, std::set<Uid>> parents;
  std::set<Uid> visited;
  std::vector<Uid> frontier{hierarchy.root()};
  while (!frontier.empty()) {
    const Uid dir = frontier.back();
    frontier.pop_back();
    if (!visited.insert(dir).second) continue;
    auto entries = hierarchy.List(dir);
    if (!entries.ok()) continue;
    for (const DirEntry& entry : entries.value()) {
      if (entry.is_link) continue;  // Links hold a pathname, not a UID.
      parents[entry.uid].insert(dir);
      auto branch = kernel_->store().Get(entry.uid);
      if (branch.ok() && (*branch)->is_directory) {
        frontier.push_back(entry.uid);
      }
    }
  }

  for (Uid uid : BranchUidsSorted(kernel_)) {
    if (uid == hierarchy.root()) continue;
    const Branch& branch = **kernel_->store().Get(uid);
    auto it = parents.find(uid);
    if (it == parents.end() || it->second.empty()) {
      report->findings.push_back(
          {AuditClaim::kOrphanSegment, "branch", uid, 0, 0,
           "branch is catalogued in no directory reachable from the root"});
      continue;
    }
    if (it->second.size() > 1) {
      report->findings.push_back(
          {AuditClaim::kMultiParentSegment, "branch", uid, 0, 0,
           "branch is catalogued in " + std::to_string(it->second.size()) +
               " distinct directories"});
      continue;  // The parent link can match at most one of them.
    }
    const Uid catalogued_in = *it->second.begin();
    if (branch.parent != catalogued_in) {
      report->findings.push_back(
          {AuditClaim::kMultiParentSegment, "branch", uid, 0, 0,
           "branch parent link (" + std::to_string(branch.parent) +
               ") disagrees with the directory holding its entry (" +
               std::to_string(catalogued_in) + ")"});
    }
  }
}

void StaticCertifier::CheckLockOrder(AuditReport* report) {
  const LockTrace& trace = kernel_->machine().lock_trace();
  // Every observed nesting must be strictly level-increasing. The trace
  // already records outright violations as they happen; re-deriving the rule
  // over the edge set catches any edge the runtime check would have missed
  // (and keeps the certifier's verdict independent of the recorder's).
  for (const auto& [names, levels] : trace.edges()) {
    if (levels.second > levels.first) continue;
    report->findings.push_back(
        {AuditClaim::kLockOrder, names.first + " -> " + names.second, kInvalidUid, 0, 0,
         "observed acquisition of `" + names.second + "` (level " +
             std::to_string(levels.second) + ") while holding `" + names.first +
             "` (level " + std::to_string(levels.first) +
             "): the lock hierarchy requires strictly increasing levels"});
  }
  for (const LockOrderViolation& v : trace.violations()) {
    report->findings.push_back(
        {AuditClaim::kLockOrder, v.held + " -> " + v.acquired, kInvalidUid, 0, 0,
         "cpu " + std::to_string(v.cpu) + " at cycle " + std::to_string(v.time) +
             " acquired `" + v.acquired + "` (level " + std::to_string(v.acquired_level) +
             ") while holding `" + v.held + "` (level " + std::to_string(v.held_level) + ")"});
  }
}

// --- Claim 7: scheduler state is isolated from protection state -------------

void StaticCertifier::CheckSchedulerIsolation(AuditReport* report) {
  TrafficController& traffic = kernel_->traffic();
  ReferenceMonitor& monitor = kernel_->monitor();
  const uint32_t classes = traffic.work_class_count();
  for (Process* p : ProcessesSorted(kernel_)) {
    // (a) Well-formedness: the queue invariants index by these fields.
    if (p->sched_level() >= TrafficController::kSchedLevels) {
      report->findings.push_back(
          {AuditClaim::kSchedulerIsolation, "pid " + std::to_string(p->pid()), kInvalidUid,
           p->pid(), 0,
           "feedback level " + std::to_string(p->sched_level()) + " out of range (max " +
               std::to_string(TrafficController::kSchedLevels - 1) + ")"});
    }
    if (p->work_class() >= classes) {
      report->findings.push_back(
          {AuditClaim::kSchedulerIsolation, "pid " + std::to_string(p->pid()), kInvalidUid,
           p->pid(), 0,
           "work class " + std::to_string(p->work_class()) + " out of range (" +
               std::to_string(classes) + " classes defined)"});
      continue;  // Don't permute through an already-bogus class id.
    }

    // (b) Isolation: snapshot the modes every SDW derives, permute the
    // process through every (work class, feedback level) pair, and demand
    // the derivation is unchanged — scheduling may reorder, never widen.
    const bool trusted = Kernel::Trusted(*p);
    const uint32_t saved_class = p->work_class();
    const uint32_t saved_level = p->sched_level();
    auto derive = [&](SegNo segno) -> int {
      const SegmentDescriptor& sdw = p->dseg().Get(segno);
      if (!sdw.valid || sdw.uid == kInvalidUid || !kernel_->store().Exists(sdw.uid)) {
        return -1;
      }
      const Branch& branch = **kernel_->store().Get(sdw.uid);
      if (branch.is_directory) return -1;
      return monitor.SegmentModes(branch, p->principal(), p->clearance(), trusted);
    };
    for (SegNo segno = 0; segno < kMaxSegments; ++segno) {
      const int baseline = derive(segno);
      if (baseline < 0) continue;
      for (uint32_t work_class = 0; work_class < classes; ++work_class) {
        for (uint32_t level = 0; level < TrafficController::kSchedLevels; ++level) {
          p->set_work_class(work_class);
          p->set_sched_level(level);
          const int permuted = derive(segno);
          if (permuted != baseline) {
            report->findings.push_back(
                {AuditClaim::kSchedulerIsolation, PidSegno(*p, segno),
                 p->dseg().Get(segno).uid, p->pid(), segno,
                 "derived modes changed from " +
                     SegmentModeString(static_cast<uint8_t>(baseline)) + " to " +
                     SegmentModeString(static_cast<uint8_t>(permuted)) + " at work class " +
                     std::to_string(work_class) + " level " + std::to_string(level) +
                     ": scheduler state is leaking into access derivation"});
          }
        }
      }
      p->set_work_class(saved_class);
      p->set_sched_level(saved_level);
    }
    p->set_work_class(saved_class);
    p->set_sched_level(saved_level);
  }
}

AuditReport StaticCertifier::Certify() {
  AuditReport report;
  CheckRingBrackets(&report);
  CheckGates(&report);
  CheckAccessDerivation(&report);
  CheckDsegConsistency(&report);
  CheckHierarchyReachability(&report);
  CheckLockOrder(&report);
  CheckSchedulerIsolation(&report);
  return report;
}

}  // namespace multics::audit_static
