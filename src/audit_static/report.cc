#include "src/audit_static/report.h"

#include <algorithm>
#include <sstream>

namespace multics::audit_static {

const char* AuditClaimName(AuditClaim claim) {
  switch (claim) {
    case AuditClaim::kRingBracketWellFormed: return "RING_BRACKET_WELL_FORMED";
    case AuditClaim::kSdwBracketConsistency: return "SDW_BRACKET_CONSISTENCY";
    case AuditClaim::kGateDiscipline: return "GATE_DISCIPLINE";
    case AuditClaim::kGateRegistry: return "GATE_REGISTRY";
    case AuditClaim::kAccessDerivable: return "ACCESS_DERIVABLE";
    case AuditClaim::kMlsWidening: return "MLS_WIDENING";
    case AuditClaim::kDsegStoreConsistency: return "DSEG_STORE_CONSISTENCY";
    case AuditClaim::kOrphanSegment: return "ORPHAN_SEGMENT";
    case AuditClaim::kMultiParentSegment: return "MULTI_PARENT_SEGMENT";
    case AuditClaim::kLockOrder: return "LOCK_ORDER";
    case AuditClaim::kSchedulerIsolation: return "SCHEDULER_ISOLATION";
  }
  return "UNKNOWN";
}

std::string FormatAccessWitness(const AccessWitness& w) {
  std::ostringstream out;
  const uint8_t excess = static_cast<uint8_t>(w.held & ~w.derived);
  out << "pid " << w.pid << " (" << w.principal << ") segno " << w.segno << " uid " << w.uid
      << " holds " << SegmentModeString(w.held) << " but ACL ∧ MLS derive "
      << SegmentModeString(w.derived) << " (excess " << SegmentModeString(excess)
      << "): "
      << (w.mls ? "reachable lattice violation" : "mode not derivable from the access control list");
  return out.str();
}

uint64_t AuditReport::CountForClaim(AuditClaim claim) const {
  return static_cast<uint64_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const AuditFinding& f) { return f.claim == claim; }));
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  out << "mx_audit: examined " << processes_examined << " process(es), " << sdws_examined
      << " SDW(s), " << branches_examined << " branch(es), " << gates_examined
      << " gate(s): " << findings.size() << " finding(s)\n";
  for (const AuditFinding& f : findings) {
    out << "  [" << AuditClaimName(f.claim) << "] " << f.subject;
    if (f.uid != kInvalidUid) out << " uid=" << f.uid;
    if (f.pid != 0) out << " pid=" << f.pid;
    out << ": " << f.message << "\n";
  }
  return out.str();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string AuditReport::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"mx-audit-v1\",\n"
      << "  \"processes_examined\": " << processes_examined << ",\n"
      << "  \"sdws_examined\": " << sdws_examined << ",\n"
      << "  \"branches_examined\": " << branches_examined << ",\n"
      << "  \"gates_examined\": " << gates_examined << ",\n"
      << "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const AuditFinding& f = findings[i];
    out << (i ? "," : "") << "\n    {\"claim\": \"" << AuditClaimName(f.claim)
        << "\", \"subject\": \"" << JsonEscape(f.subject) << "\", \"uid\": " << f.uid
        << ", \"pid\": " << f.pid << ", \"segno\": " << f.segno << ", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  out << (findings.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

}  // namespace multics::audit_static
